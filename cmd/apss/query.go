package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"bayeslsh"
)

// queryMain implements the "apss query" subcommand: serve point
// queries against the query-serving index — built in-process from a
// dataset, or loaded from a snapshot written by "apss build -out"
// (-index), the online half of the offline/online split. Queries come
// from a vector-format file (-queries) and/or the first -self vectors
// of the corpus itself; each prints as lines of "<query> <id> <sim>".
func queryMain(args []string) {
	fs := flag.NewFlagSet("apss query", flag.ExitOnError)
	datasetName := fs.String("dataset", "", "built-in synthetic dataset name")
	file := fs.String("file", "", "dataset file in the library's vector format")
	measureName := fs.String("measure", "cosine", "cosine | jaccard | binary-cosine")
	algName := fs.String("algorithm", "LSH+BayesLSH", "pipeline the index is built for")
	threshold := fs.Float64("t", 0.7, "similarity threshold the index is built at")
	index := fs.String("index", "", "load a prebuilt index snapshot instead of building (see apss build)")
	qt := fs.Float64("qt", 0, "per-query threshold override (>= the built threshold; 0 = built threshold)")
	topk := fs.Int("topk", 0, "return the k most similar vectors instead of a threshold query")
	queriesFile := fs.String("queries", "", "query vectors in the library's vector format")
	self := fs.Int("self", 0, "also query the first n corpus vectors against the index")
	seed := fs.Uint64("seed", 42, "random seed")
	parallel := fs.Int("parallel", 0, "batch-query workers (0 = NumCPU, 1 = sequential)")
	timeout := fs.Duration("timeout", 0, "abort query serving after this duration (0 = no limit)")
	fs.Parse(args)

	const prog = "apss query"
	measure, ok := measuresByName[*measureName]
	if !ok {
		usageError(prog, "unknown measure %q", *measureName)
	}
	alg, auto := algorithmFlag(prog, *algName)
	validateCommon(prog, *threshold, *parallel)
	if *topk < 0 {
		usageError(prog, "-topk %d must be >= 0 (0 = threshold query)", *topk)
	}
	if *qt != 0 && (*qt <= 0 || *qt > 1) {
		usageError(prog, "-qt %v outside (0, 1]", *qt)
	}
	if *topk > 0 && *qt != 0 {
		usageError(prog, "-qt applies to threshold queries only; it cannot combine with -topk")
	}
	if *self < 0 {
		usageError(prog, "-self %d must be >= 0", *self)
	}
	ctx, cancel := signalContext(prog, *timeout)
	defer cancel()
	if *index != "" {
		// A snapshot fixes corpus, measure, algorithm and threshold;
		// flags that would contradict it are rejected, not ignored.
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "dataset", "file", "measure", "algorithm", "t", "seed":
				usageError(prog, "-%s cannot combine with -index (the snapshot fixes it)", f.Name)
			}
		})
	}

	var (
		ix  *bayeslsh.Index
		ds  *bayeslsh.Dataset
		err error
	)
	if *index != "" {
		start := time.Now()
		if ix, err = bayeslsh.LoadFile(*index); err != nil {
			fmt.Fprintln(os.Stderr, prog+":", err)
			os.Exit(1)
		}
		ix.SetRuntime(*parallel, 0)
		ds = ix.Dataset()
		fmt.Fprintf(os.Stderr, "apss query: %v index over %d vectors (%v, t=%.2f) loaded from %s in %v\n",
			ix.Options().Algorithm, ix.Len(), ix.Measure(), ix.Threshold(),
			*index, time.Since(start).Round(time.Millisecond))
	} else {
		ds = loadDataset(*datasetName, *file, measure, prog)
	}

	// Collect the queries before paying for any build.
	var queries []bayeslsh.Vec
	if *queriesFile != "" {
		f, err := os.Open(*queriesFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, prog+":", err)
			os.Exit(1)
		}
		qds, err := bayeslsh.ReadDataset(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, prog+":", err)
			os.Exit(1)
		}
		for i := 0; i < qds.Len(); i++ {
			queries = append(queries, qds.Vector(i))
		}
	}
	if *self > ds.Len() {
		*self = ds.Len()
	}
	for i := 0; i < *self; i++ {
		queries = append(queries, ds.Vector(i))
	}
	if len(queries) == 0 {
		usageError(prog, "need -queries and/or -self")
	}

	if ix == nil {
		if ix, err = bayeslsh.NewIndex(ds, measure, bayeslsh.EngineConfig{
			Seed:        *seed,
			Parallelism: *parallel,
		}, bayeslsh.Options{Algorithm: alg, AutoPipeline: auto, Threshold: *threshold}); err != nil {
			fmt.Fprintln(os.Stderr, prog+":", err)
			os.Exit(1)
		}
		st := ix.Stats()
		fmt.Fprintf(os.Stderr, "apss query: %v index over %d vectors (%v, t=%.2f) built in %v (tables=%d bandk=%d)\n",
			ix.Options().Algorithm, ix.Len(), measure, *threshold, st.BuildTime.Round(time.Millisecond), st.Tables, st.BandK)
	}

	start := time.Now()
	var results [][]bayeslsh.Match
	if *topk > 0 {
		results = make([][]bayeslsh.Match, len(queries))
		for i, q := range queries {
			if results[i], err = ix.TopKContext(ctx, q, *topk); err != nil {
				queryAbort(start, i, err)
			}
		}
	} else {
		if results, err = ix.QueryBatchContext(ctx, queries, bayeslsh.QueryOptions{Threshold: *qt}); err != nil {
			queryAbort(start, 0, err)
		}
	}
	elapsed := time.Since(start)

	total := 0
	for i, ms := range results {
		for _, m := range ms {
			fmt.Printf("%d\t%d\t%.4f\n", i, m.ID, m.Sim)
		}
		total += len(ms)
	}
	fmt.Fprintf(os.Stderr, "apss query: %d queries, %d matches in %v (%.0f queries/s)\n",
		len(queries), total, elapsed.Round(time.Millisecond),
		float64(len(queries))/elapsed.Seconds())
}

// queryAbort reports a failed or canceled serving run. done is the
// number of queries fully answered before the failure (0 for the
// all-or-nothing batch path); cancellation exits 130, everything else
// exits 1.
func queryAbort(start time.Time, done int, err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr,
			"apss query: aborted (%s) after %v: %v\n"+
				"            partial: %d queries answered before cancellation (results discarded)\n",
			abortReason(err), time.Since(start).Round(time.Millisecond), err, done)
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "apss query:", err)
	os.Exit(1)
}

// loadDataset loads the corpus the way the batch mode does: a file in
// the library's vector format, or a built-in synthetic corpus
// (Tf-Idf-weighted and normalized for cosine).
func loadDataset(datasetName, file string, measure bayeslsh.Measure, prog string) *bayeslsh.Dataset {
	var (
		ds  *bayeslsh.Dataset
		err error
	)
	switch {
	case file != "":
		f, ferr := os.Open(file)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, prog+":", ferr)
			os.Exit(1)
		}
		ds, err = bayeslsh.ReadDataset(f)
		f.Close()
	case datasetName != "":
		ds, err = bayeslsh.Synthetic(datasetName)
		if err == nil && measure == bayeslsh.Cosine {
			ds = ds.TfIdf().Normalize()
		}
	default:
		fmt.Fprintln(os.Stderr, prog+": need -dataset or -file")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, prog+":", err)
		os.Exit(1)
	}
	return ds
}
