package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bayeslsh"
)

// queryMain implements the "apss query" subcommand: build the
// query-serving index once, then answer point queries against it.
// Queries come from a vector-format file (-queries) and/or the first
// -self vectors of the corpus itself; each prints as lines of
// "<query> <id> <sim>".
func queryMain(args []string) {
	fs := flag.NewFlagSet("apss query", flag.ExitOnError)
	datasetName := fs.String("dataset", "", "built-in synthetic dataset name")
	file := fs.String("file", "", "dataset file in the library's vector format")
	measureName := fs.String("measure", "cosine", "cosine | jaccard | binary-cosine")
	algName := fs.String("algorithm", "LSH+BayesLSH", "pipeline the index is built for")
	threshold := fs.Float64("t", 0.7, "similarity threshold the index is built at")
	qt := fs.Float64("qt", 0, "per-query threshold override (>= -t; 0 = use -t)")
	topk := fs.Int("topk", 0, "return the k most similar vectors instead of a threshold query")
	queriesFile := fs.String("queries", "", "query vectors in the library's vector format")
	self := fs.Int("self", 0, "also query the first n corpus vectors against the index")
	seed := fs.Uint64("seed", 42, "random seed")
	parallel := fs.Int("parallel", 0, "batch-query workers (0 = NumCPU, 1 = sequential)")
	fs.Parse(args)

	measure, ok := measuresByName[*measureName]
	if !ok {
		fmt.Fprintf(os.Stderr, "apss query: unknown measure %q\n", *measureName)
		os.Exit(2)
	}
	alg, ok := algorithmsByName[*algName]
	if !ok {
		fmt.Fprintf(os.Stderr, "apss query: unknown algorithm %q\n", *algName)
		os.Exit(2)
	}
	if *topk > 0 && *qt != 0 {
		fmt.Fprintln(os.Stderr, "apss query: -qt applies to threshold queries only; it cannot combine with -topk")
		os.Exit(2)
	}
	ds := loadDataset(*datasetName, *file, measure, "apss query")

	// Collect the queries before paying for the build.
	var queries []bayeslsh.Vec
	if *queriesFile != "" {
		f, err := os.Open(*queriesFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "apss query:", err)
			os.Exit(1)
		}
		qds, err := bayeslsh.ReadDataset(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "apss query:", err)
			os.Exit(1)
		}
		for i := 0; i < qds.Len(); i++ {
			queries = append(queries, qds.Vector(i))
		}
	}
	if *self > ds.Len() {
		*self = ds.Len()
	}
	for i := 0; i < *self; i++ {
		queries = append(queries, ds.Vector(i))
	}
	if len(queries) == 0 {
		fmt.Fprintln(os.Stderr, "apss query: need -queries and/or -self")
		os.Exit(2)
	}

	ix, err := bayeslsh.NewIndex(ds, measure, bayeslsh.EngineConfig{
		Seed:        *seed,
		Parallelism: *parallel,
	}, bayeslsh.Options{Algorithm: alg, Threshold: *threshold})
	if err != nil {
		fmt.Fprintln(os.Stderr, "apss query:", err)
		os.Exit(1)
	}
	st := ix.Stats()
	fmt.Fprintf(os.Stderr, "apss query: %v index over %d vectors (%v, t=%.2f) built in %v (tables=%d bandk=%d)\n",
		alg, ix.Len(), measure, *threshold, st.BuildTime.Round(time.Millisecond), st.Tables, st.BandK)

	start := time.Now()
	var results [][]bayeslsh.Match
	if *topk > 0 {
		results = make([][]bayeslsh.Match, len(queries))
		for i, q := range queries {
			if results[i], err = ix.TopK(q, *topk); err != nil {
				fmt.Fprintln(os.Stderr, "apss query:", err)
				os.Exit(1)
			}
		}
	} else {
		if results, err = ix.QueryBatch(queries, bayeslsh.QueryOptions{Threshold: *qt}); err != nil {
			fmt.Fprintln(os.Stderr, "apss query:", err)
			os.Exit(1)
		}
	}
	elapsed := time.Since(start)

	total := 0
	for i, ms := range results {
		for _, m := range ms {
			fmt.Printf("%d\t%d\t%.4f\n", i, m.ID, m.Sim)
		}
		total += len(ms)
	}
	fmt.Fprintf(os.Stderr, "apss query: %d queries, %d matches in %v (%.0f queries/s)\n",
		len(queries), total, elapsed.Round(time.Millisecond),
		float64(len(queries))/elapsed.Seconds())
}

// loadDataset loads the corpus the way the batch mode does: a file in
// the library's vector format, or a built-in synthetic corpus
// (Tf-Idf-weighted and normalized for cosine).
func loadDataset(datasetName, file string, measure bayeslsh.Measure, prog string) *bayeslsh.Dataset {
	var (
		ds  *bayeslsh.Dataset
		err error
	)
	switch {
	case file != "":
		f, ferr := os.Open(file)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, prog+":", ferr)
			os.Exit(1)
		}
		ds, err = bayeslsh.ReadDataset(f)
		f.Close()
	case datasetName != "":
		ds, err = bayeslsh.Synthetic(datasetName)
		if err == nil && measure == bayeslsh.Cosine {
			ds = ds.TfIdf().Normalize()
		}
	default:
		fmt.Fprintln(os.Stderr, prog+": need -dataset or -file")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, prog+":", err)
		os.Exit(1)
	}
	return ds
}
