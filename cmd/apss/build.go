package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bayeslsh"
)

// buildMain implements the "apss build" subcommand: the offline half
// of the build-offline/serve-online split. It builds the query-serving
// index once — paying hashing, banding and (for the Jaccard Bayes
// pipelines) prior fitting — and saves a versioned snapshot that
// "apss query -index" (or any process calling bayeslsh.LoadFile)
// loads without rebuilding.
func buildMain(args []string) {
	fs := flag.NewFlagSet("apss build", flag.ExitOnError)
	datasetName := fs.String("dataset", "", "built-in synthetic dataset name")
	file := fs.String("file", "", "dataset file in the library's vector format")
	measureName := fs.String("measure", "cosine", "cosine | jaccard | binary-cosine")
	algName := fs.String("algorithm", "LSH+BayesLSH", "pipeline the index is built for")
	threshold := fs.Float64("t", 0.7, "similarity threshold the index is built at")
	seed := fs.Uint64("seed", 42, "random seed")
	parallel := fs.Int("parallel", 0, "build workers (0 = NumCPU, 1 = sequential)")
	out := fs.String("out", "", "snapshot output path (required)")
	format := fs.String("format", "v1", "snapshot format: v1 (heap-loaded stream) | v3 (mmap-servable, page-aligned)")
	fs.Parse(args)

	const prog = "apss build"
	measure, ok := measuresByName[*measureName]
	if !ok {
		usageError(prog, "unknown measure %q", *measureName)
	}
	alg, auto := algorithmFlag(prog, *algName)
	if *format != "v1" && *format != "v3" {
		usageError(prog, "unknown -format %q (want v1 or v3)", *format)
	}
	validateCommon(prog, *threshold, *parallel)
	if *out == "" {
		usageError(prog, "need -out (snapshot path to write)")
	}

	ds := loadDataset(*datasetName, *file, measure, prog)
	ix, err := bayeslsh.NewIndex(ds, measure, bayeslsh.EngineConfig{
		Seed:        *seed,
		Parallelism: *parallel,
	}, bayeslsh.Options{Algorithm: alg, AutoPipeline: auto, Threshold: *threshold})
	if err != nil {
		fmt.Fprintln(os.Stderr, prog+":", err)
		os.Exit(1)
	}
	save, version := ix.SaveFile, bayeslsh.SnapshotVersion
	if *format == "v3" {
		save, version = ix.SaveFileV3, bayeslsh.DiskSnapshotVersion
	}
	if err := save(*out); err != nil {
		fmt.Fprintln(os.Stderr, prog+":", err)
		os.Exit(1)
	}
	size := int64(-1)
	if fi, err := os.Stat(*out); err == nil {
		size = fi.Size()
	}
	st := ix.Stats()
	fmt.Fprintf(os.Stderr,
		"apss build: %v index over %d vectors (%v, t=%.2f) built in %v, snapshot %s (%d bytes, format v%d)\n",
		ix.Options().Algorithm, ix.Len(), measure, *threshold, st.BuildTime.Round(time.Millisecond),
		*out, size, version)
}
