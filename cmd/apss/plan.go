package main

import (
	"flag"
	"fmt"

	"bayeslsh"
)

// planMain implements the "apss plan" subcommand: the planner's
// decision surface as a dry run. It collects the corpus statistics
// the engine would collect at build time (one O(corpus) pass), runs
// the same deterministic rule set Options.AutoPipeline runs, and
// prints the chosen pipeline — without building an index. With -why,
// every rule that fired is printed with its evidence, so "why did
// auto pick AllPairs here?" has a one-command answer. The corpus can
// also come from a snapshot's persisted statistics (-index), which
// reads only the metadata section:
//
//	apss plan -dataset RCV1-sim -measure cosine -t 0.7 -why
//	apss plan -file corpus.vec -measure jaccard -t 0.5 -topk 10
//	apss plan -index index.snap -why
//
// The printed choice is exact, not advisory: a Search, NewIndex,
// NewLiveIndex, or sharded NewLocal with AutoPipeline set over the
// same corpus and parameters resolves to the same pipeline.
func planMain(args []string) {
	fs := flag.NewFlagSet("apss plan", flag.ExitOnError)
	datasetName := fs.String("dataset", "", "built-in synthetic dataset name")
	file := fs.String("file", "", "dataset file in the library's vector format")
	index := fs.String("index", "", "plan from a snapshot's persisted corpus statistics instead")
	measureName := fs.String("measure", "cosine", "cosine | jaccard | binary-cosine")
	threshold := fs.Float64("t", 0.7, "similarity threshold to plan for")
	topk := fs.Int("topk", 0, "plan for top-k queries with this k (0 = threshold search)")
	serving := fs.Bool("serving", false, "plan for a serving index (query-at-a-time) rather than a batch self-join")
	why := fs.Bool("why", false, "print every rule that fired, with its evidence")
	fs.Parse(args)

	const prog = "apss plan"
	measure, ok := measuresByName[*measureName]
	if !ok {
		usageError(prog, "unknown measure %q", *measureName)
	}
	if *threshold <= 0 || *threshold > 1 {
		usageError(prog, "-t %v outside (0, 1]", *threshold)
	}
	if *topk < 0 {
		usageError(prog, "-topk %d must be >= 0 (0 = threshold search)", *topk)
	}

	var st bayeslsh.CorpusStats
	if *index != "" {
		if *datasetName != "" || *file != "" {
			usageError(prog, "-index cannot combine with -dataset/-file")
		}
		info, err := bayeslsh.InspectFile(*index)
		if err != nil {
			usageError(prog, "%s: %v", *index, err)
		}
		if info.Stats.Zero() {
			usageError(prog, "%s predates stats persistence; rebuild it or plan from -dataset/-file", *index)
		}
		st = info.Stats
		// The snapshot fixes the measure unless the caller overrode it.
		planned := false
		fs.Visit(func(f *flag.Flag) { planned = planned || f.Name == "measure" })
		if !planned {
			measure = info.Measure
		}
	} else {
		ds := loadDataset(*datasetName, *file, measure, prog)
		st = ds.CorpusStats()
	}

	plan := bayeslsh.ChoosePlan(st, bayeslsh.PlanQuery{
		Measure:   measure,
		Threshold: *threshold,
		K:         *topk,
		Serving:   *serving || *topk > 0,
	})

	fmt.Printf("corpus: %d vectors, dim %d, nnz %d\n", st.Vectors, st.Dim, st.Nnz)
	fmt.Printf("  lengths: avg %.1f, median %d, p90 %d, max %d, cv %.2f\n",
		st.AvgLen, st.MedianLen, st.P90Len, st.MaxLen, st.LenCV)
	fmt.Printf("  density %.4g, top-df %.2f, heavy %.2f\n",
		st.Density, st.TopDFFrac, st.HeavyFrac)
	fmt.Printf("plan (%v, t=%.2f): %v\n", measure, *threshold, plan.Pipeline)
	if *why {
		for _, r := range plan.Rules {
			fmt.Printf("  rule %s: %s\n", r.Name, r.Detail)
		}
	}
}
