// Command apss runs all-pairs similarity search pipelines on a
// dataset — either a built-in synthetic corpus or a file in the
// library's vector format.
//
// The default (batch) mode runs one search and prints the result
// pairs and a cost profile:
//
//	apss -dataset RCV1-sim -measure cosine -algorithm LSH+BayesLSH -t 0.7
//	apss -file corpus.vec -measure jaccard -algorithm AP+BayesLSH-Lite -t 0.5 -pairs
//
// The query subcommand builds the index once and serves point
// queries against it (see docs/QUERYING.md):
//
//	apss query -dataset RCV1-sim -t 0.7 -queries q.vec
//	apss query -file corpus.vec -measure jaccard -t 0.5 -self 100 -topk 10
package main

import (
	"flag"
	"fmt"
	"os"

	"bayeslsh"
)

var algorithmsByName = map[string]bayeslsh.Algorithm{
	"BruteForce":        bayeslsh.BruteForce,
	"AllPairs":          bayeslsh.AllPairs,
	"AP+BayesLSH":       bayeslsh.AllPairsBayesLSH,
	"AP+BayesLSH-Lite":  bayeslsh.AllPairsBayesLSHLite,
	"LSH":               bayeslsh.LSH,
	"LSHApprox":         bayeslsh.LSHApprox,
	"LSH+BayesLSH":      bayeslsh.LSHBayesLSH,
	"LSH+BayesLSH-Lite": bayeslsh.LSHBayesLSHLite,
	"PPJoin":            bayeslsh.PPJoin,
}

var measuresByName = map[string]bayeslsh.Measure{
	"cosine":        bayeslsh.Cosine,
	"jaccard":       bayeslsh.Jaccard,
	"binary-cosine": bayeslsh.BinaryCosine,
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "query" {
		queryMain(os.Args[2:])
		return
	}
	datasetName := flag.String("dataset", "", "built-in synthetic dataset name")
	file := flag.String("file", "", "dataset file in the library's vector format")
	measureName := flag.String("measure", "cosine", "cosine | jaccard | binary-cosine")
	algName := flag.String("algorithm", "LSH+BayesLSH", "pipeline (see source for names)")
	threshold := flag.Float64("t", 0.7, "similarity threshold")
	eps := flag.Float64("epsilon", 0.03, "BayesLSH recall parameter")
	delta := flag.Float64("delta", 0.05, "BayesLSH accuracy parameter delta")
	gamma := flag.Float64("gamma", 0.03, "BayesLSH accuracy parameter gamma")
	seed := flag.Uint64("seed", 42, "random seed")
	parallel := flag.Int("parallel", 0, "pipeline workers (0 = NumCPU, 1 = sequential)")
	batch := flag.Int("batch", 0, "candidate pairs per verification work unit (0 = default 1024)")
	pairs := flag.Bool("pairs", false, "print every result pair")
	flag.Parse()

	measure, ok := measuresByName[*measureName]
	if !ok {
		fmt.Fprintf(os.Stderr, "apss: unknown measure %q\n", *measureName)
		os.Exit(2)
	}
	alg, ok := algorithmsByName[*algName]
	if !ok {
		fmt.Fprintf(os.Stderr, "apss: unknown algorithm %q\n", *algName)
		os.Exit(2)
	}

	ds := loadDataset(*datasetName, *file, measure, "apss")

	eng, err := bayeslsh.NewEngine(ds, measure, bayeslsh.EngineConfig{
		Seed:        *seed,
		Parallelism: *parallel,
		BatchSize:   *batch,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "apss:", err)
		os.Exit(1)
	}
	out, err := eng.Search(bayeslsh.Options{
		Algorithm: alg,
		Threshold: *threshold,
		Epsilon:   *eps,
		Delta:     *delta,
		Gamma:     *gamma,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "apss:", err)
		os.Exit(1)
	}

	if *pairs {
		for _, r := range out.Results {
			fmt.Printf("%d\t%d\t%.4f\n", r.A, r.B, r.Sim)
		}
	}
	fmt.Fprintf(os.Stderr,
		"apss: %v on %d vectors (%v, t=%.2f): %d pairs found\n"+
			"      candidates=%d pruned=%d hashes_compared=%d\n"+
			"      candgen=%v verify=%v hashing=%v total=%v\n",
		alg, ds.Len(), measure, *threshold, len(out.Results),
		out.Candidates, out.Pruned, out.HashesCompared,
		out.CandGenTime.Round(1e6), out.VerifyTime.Round(1e6),
		out.HashTime.Round(1e6), out.Total.Round(1e6))
}
