// Command apss runs all-pairs similarity search pipelines on a
// dataset — either a built-in synthetic corpus or a file in the
// library's vector format.
//
// The default (batch) mode runs one search and prints the result
// pairs and a cost profile:
//
//	apss -dataset RCV1-sim -measure cosine -algorithm LSH+BayesLSH -t 0.7
//	apss -file corpus.vec -measure jaccard -algorithm AP+BayesLSH-Lite -t 0.5 -pairs
//
// Every subcommand is cancelable: Ctrl-C (SIGINT) or an elapsed
// -timeout aborts the in-flight search through the library's
// context-aware API and exits with status 130, printing partial
// statistics to stderr. With -stream, result pairs reach stdout as
// verification batches complete, so a canceled long-running join
// still delivers everything verified up to that point (see
// docs/CONTEXTS.md):
//
//	apss -dataset RCV1-sim -t 0.7 -stream -timeout 30s
//
// The query subcommand builds the index once and serves point
// queries against it (see docs/QUERYING.md):
//
//	apss query -dataset RCV1-sim -t 0.7 -queries q.vec
//	apss query -file corpus.vec -measure jaccard -t 0.5 -self 100 -topk 10
//
// The build subcommand is the offline half of the production split:
// it builds the index once and saves a snapshot that any number of
// serving processes load in milliseconds (see docs/PERSISTENCE.md):
//
//	apss build -dataset RCV1-sim -t 0.7 -out index.snap
//	apss build -dataset RCV1-sim -t 0.7 -format v3 -out index.v3.snap
//	apss query -index index.snap -self 100
//
// The plan subcommand is the planner's dry run: it collects the
// corpus statistics Options.AutoPipeline would collect, runs the
// same rule set, and prints the chosen pipeline; -why prints each
// rule that fired with its evidence (see docs/PLANNER.md). Every
// index-building subcommand accepts -algorithm auto to let the same
// planner choose at build time:
//
//	apss plan -dataset RCV1-sim -measure cosine -t 0.7 -why
//	apss -dataset RCV1-sim -algorithm auto -t 0.7
//
// The info subcommand inspects any snapshot file without loading it
// into a servable index: version, section table (tag, offset, length,
// per-section checksum for v3), and corpus shape. Corrupt or foreign
// files exit with status 2 and a one-line diagnosis:
//
//	apss info index.snap
//
// The serve subcommand runs the live (ingest-while-serving) index.
// With -http it is a concurrent HTTP/JSON daemon — NDJSON-streamed
// query/topk/batch, add/delete ingest, stats/compact/save/load admin,
// /metrics and /debug/pprof, per-request deadlines, 429 admission
// control, and graceful drain on SIGTERM (see docs/SERVING.md).
// Without -http it is a line-oriented loop on stdin that accepts the
// same operations one command per line and saves live snapshots that
// a later serve session resumes from (see docs/LIVE.md). With
// -shards N the corpus is partitioned over N in-process shards behind
// a scatter-gather router whose answers are bit-identical to the
// single-node index (see docs/SHARDING.md):
//
//	apss serve -dataset RCV1-sim -t 0.7 -http :8080
//	apss serve -dataset RCV1-sim -t 0.7 -shards 4 -http :8080
//	apss serve -index index.snap -maxdelta 1024
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"bayeslsh"
)

var algorithmsByName = map[string]bayeslsh.Algorithm{
	"BruteForce":        bayeslsh.BruteForce,
	"AllPairs":          bayeslsh.AllPairs,
	"AP+BayesLSH":       bayeslsh.AllPairsBayesLSH,
	"AP+BayesLSH-Lite":  bayeslsh.AllPairsBayesLSHLite,
	"LSH":               bayeslsh.LSH,
	"LSHApprox":         bayeslsh.LSHApprox,
	"LSH+BayesLSH":      bayeslsh.LSHBayesLSH,
	"LSH+BayesLSH-Lite": bayeslsh.LSHBayesLSHLite,
	"PPJoin":            bayeslsh.PPJoin,
}

var measuresByName = map[string]bayeslsh.Measure{
	"cosine":        bayeslsh.Cosine,
	"jaccard":       bayeslsh.Jaccard,
	"binary-cosine": bayeslsh.BinaryCosine,
}

// algorithmFlag resolves an -algorithm value: a pipeline name from
// algorithmsByName, or "auto" to let the corpus planner choose
// (Options.AutoPipeline; "apss plan -why" explains the choice).
func algorithmFlag(prog, name string) (alg bayeslsh.Algorithm, auto bool) {
	if name == "auto" {
		return 0, true
	}
	alg, ok := algorithmsByName[name]
	if !ok {
		usageError(prog, "unknown algorithm %q", name)
	}
	return alg, false
}

// usageError prints a one-line message to stderr and exits with
// status 2 — the shared flag-validation contract of every apss
// subcommand: bad flag values never panic and never proceed with
// garbage.
func usageError(prog, format string, args ...any) {
	fmt.Fprintf(os.Stderr, prog+": "+format+"\n", args...)
	os.Exit(2)
}

// validateCommon rejects the flag values every subcommand shares.
func validateCommon(prog string, threshold float64, parallel int) {
	if threshold <= 0 || threshold > 1 {
		usageError(prog, "-t %v outside (0, 1]", threshold)
	}
	if parallel < 0 {
		usageError(prog, "-parallel %d must be >= 0 (0 = all CPUs)", parallel)
	}
}

// signalContext returns the context every subcommand's work runs
// under: canceled by Ctrl-C (SIGINT), and additionally bounded by
// -timeout when positive. A negative -timeout is a usage error.
func signalContext(prog string, timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout < 0 {
		usageError(prog, "-timeout %v must be >= 0 (0 = no limit)", timeout)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		return ctx, func() { cancel(); stop() }
	}
	return ctx, stop
}

// abortReason names the cancellation cause for the partial-stats
// message: SIGINT or the -timeout deadline.
func abortReason(err error) string {
	if errors.Is(err, context.DeadlineExceeded) {
		return "timeout"
	}
	return "interrupted"
}

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "query":
			queryMain(os.Args[2:])
			return
		case "build":
			buildMain(os.Args[2:])
			return
		case "serve":
			serveMain(os.Args[2:])
			return
		case "info":
			infoMain(os.Args[2:])
			return
		case "plan":
			planMain(os.Args[2:])
			return
		}
	}
	datasetName := flag.String("dataset", "", "built-in synthetic dataset name")
	file := flag.String("file", "", "dataset file in the library's vector format")
	measureName := flag.String("measure", "cosine", "cosine | jaccard | binary-cosine")
	algName := flag.String("algorithm", "LSH+BayesLSH", "pipeline (see source for names)")
	threshold := flag.Float64("t", 0.7, "similarity threshold")
	eps := flag.Float64("epsilon", 0.03, "BayesLSH recall parameter")
	delta := flag.Float64("delta", 0.05, "BayesLSH accuracy parameter delta")
	gamma := flag.Float64("gamma", 0.03, "BayesLSH accuracy parameter gamma")
	seed := flag.Uint64("seed", 42, "random seed")
	parallel := flag.Int("parallel", 0, "pipeline workers (0 = NumCPU, 1 = sequential)")
	batch := flag.Int("batch", 0, "candidate pairs per verification work unit (0 = default 1024)")
	pairs := flag.Bool("pairs", false, "print every result pair")
	timeout := flag.Duration("timeout", 0, "abort the search after this duration (0 = no limit)")
	stream := flag.Bool("stream", false, "print pairs as they are verified (streaming API; pairs already printed survive cancellation)")
	flag.Parse()

	measure, ok := measuresByName[*measureName]
	if !ok {
		usageError("apss", "unknown measure %q", *measureName)
	}
	alg, auto := algorithmFlag("apss", *algName)
	validateCommon("apss", *threshold, *parallel)
	if *batch < 0 {
		usageError("apss", "-batch %d must be >= 0 (0 = default)", *batch)
	}
	ctx, cancel := signalContext("apss", *timeout)
	defer cancel()

	ds := loadDataset(*datasetName, *file, measure, "apss")

	eng, err := bayeslsh.NewEngine(ds, measure, bayeslsh.EngineConfig{
		Seed:        *seed,
		Parallelism: *parallel,
		BatchSize:   *batch,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "apss:", err)
		os.Exit(1)
	}
	opts := bayeslsh.Options{
		Algorithm:    alg,
		AutoPipeline: auto,
		Threshold:    *threshold,
		Epsilon:      *eps,
		Delta:        *delta,
		Gamma:        *gamma,
	}
	start := time.Now()

	// With -algorithm auto the planner picks the pipeline; resolve the
	// display name the same way the engine will so the summary lines
	// name the pipeline that actually ran.
	if auto {
		alg = bayeslsh.Algorithm(bayeslsh.ChoosePlan(ds.CorpusStats(), bayeslsh.PlanQuery{
			Measure: measure, Threshold: *threshold,
		}).Pipeline)
	}

	if *stream {
		// Streaming mode: pairs reach stdout as verification batches
		// complete, so a canceled search still delivered everything
		// printed so far (in unspecified order).
		n := 0
		for r, err := range eng.Stream(ctx, opts) {
			if err != nil {
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					fmt.Fprintf(os.Stderr,
						"apss: search aborted (%s) after %v: %v\n"+
							"      partial: %d pairs streamed before cancellation\n",
						abortReason(err), time.Since(start).Round(1e6), err, n)
					os.Exit(130) // interrupted/expired: 128 + SIGINT
				}
				fmt.Fprintln(os.Stderr, "apss:", err)
				os.Exit(1)
			}
			fmt.Printf("%d\t%d\t%.4f\n", r.A, r.B, r.Sim)
			n++
		}
		fmt.Fprintf(os.Stderr, "apss: %v on %d vectors (%v, t=%.2f): %d pairs streamed in %v\n",
			alg, ds.Len(), measure, *threshold, n, time.Since(start).Round(1e6))
		return
	}

	out, err := eng.SearchContext(ctx, opts)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr,
				"apss: search aborted (%s) after %v: %v\n"+
					"      partial: no pairs delivered (use -stream for incremental delivery)\n",
				abortReason(err), time.Since(start).Round(1e6), err)
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "apss:", err)
		os.Exit(1)
	}

	if *pairs {
		for _, r := range out.Results {
			fmt.Printf("%d\t%d\t%.4f\n", r.A, r.B, r.Sim)
		}
	}
	fmt.Fprintf(os.Stderr,
		"apss: %v on %d vectors (%v, t=%.2f): %d pairs found\n"+
			"      candidates=%d pruned=%d hashes_compared=%d\n"+
			"      candgen=%v verify=%v hashing=%v total=%v\n",
		alg, ds.Len(), measure, *threshold, len(out.Results),
		out.Candidates, out.Pruned, out.HashesCompared,
		out.CandGenTime.Round(1e6), out.VerifyTime.Round(1e6),
		out.HashTime.Round(1e6), out.Total.Round(1e6))
}
