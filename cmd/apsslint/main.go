// Command apsslint runs the project's contract analyzers
// (internal/analysis/...: mapiter, detrand, ctxflow, errwrap,
// gohygiene — see docs/ANALYSIS.md) over Go packages.
//
// It runs in two modes:
//
//	apsslint [-tests=false] [packages...]
//
// loads the named package patterns (default ./...) from the
// enclosing module and analyzes them, test files included by
// default. And as a go vet tool:
//
//	go vet -vettool=$(which apsslint) ./...
//
// where the go command invokes apsslint once per package with a
// vet.cfg file; apsslint implements the vet tool protocol (-V=full,
// -flags, JSON config) with the standard library alone, so it works
// in offline builds where golang.org/x/tools is unavailable.
//
// Exit status: 0 clean, 1 operational error, 2 findings. A
// per-analyzer finding count summary is printed so CI logs show
// which contract broke at a glance.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"bayeslsh/internal/analysis"
	"bayeslsh/internal/analysis/suite"
)

var (
	listFlag  = flag.Bool("list", false, "print the analyzers and their one-line contracts, then exit")
	testsFlag = flag.Bool("tests", true, "include _test.go files and _test packages (standalone mode)")
	vFlag     = flag.String("V", "", "print version and exit (vet tool protocol)")
	flagsFlag = flag.Bool("flags", false, "print flag descriptions as JSON, then exit (vet tool protocol)")
)

func main() {
	flag.Parse()
	switch {
	case *vFlag != "":
		// The go command fingerprints the tool binary for its vet
		// cache and requires "<tool> version <v>" here; hash the
		// executable into the line so a rebuilt apsslint always
		// invalidates stale cached results.
		fmt.Printf("apsslint version 1 sum=%s\n", executableSum())
		return
	case *flagsFlag:
		printFlags()
		return
	case *listFlag:
		for _, a := range suite.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Summary())
		}
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(args[0]))
	}
	os.Exit(runStandalone(args))
}

func executableSum() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

// printFlags implements the `-flags` half of the vet tool protocol:
// the go command asks the tool for its flags as JSON so it can accept
// them on the `go vet` command line.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, isBool := f.Value.(interface{ IsBoolFlag() bool })
		out = append(out, jsonFlag{Name: f.Name, Bool: isBool && b.IsBoolFlag(), Usage: f.Usage})
	})
	data, err := json.Marshal(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apsslint:", err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// counts tallies findings per analyzer and renders the summary line.
type counts map[string]int

func (c counts) total() int {
	n := 0
	for _, v := range c {
		n += v
	}
	return n
}

func (c counts) summary() string {
	names := make([]string, 0, len(c))
	for name := range c {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, name := range names {
		parts[i] = fmt.Sprintf("%s=%d", name, c[name])
	}
	return fmt.Sprintf("apsslint: %d finding(s): %s", c.total(), strings.Join(parts, " "))
}

func report(w io.Writer, fset *token.FileSet, diags []analysis.Diagnostic, c counts) {
	wd, _ := os.Getwd()
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		name := pos.Filename
		if wd != "" {
			if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n", name, pos.Line, pos.Column, d.Analyzer, d.Message)
		c[d.Analyzer]++
	}
}

// runStandalone loads the patterns from the enclosing module and
// analyzes them. Findings go to stdout; the summary to stderr.
func runStandalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "apsslint:", err)
		return 1
	}
	units, err := analysis.Load(root, patterns, *testsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apsslint:", err)
		return 1
	}
	analyzers := suite.Analyzers()
	c := make(counts)
	for _, u := range units {
		diags, err := analysis.Run(u, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "apsslint:", err)
			return 1
		}
		report(os.Stdout, u.Fset, diags, c)
	}
	if c.total() > 0 {
		fmt.Fprintln(os.Stderr, c.summary())
		return 2
	}
	return 0
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s (run inside the module)", dir)
		}
		dir = parent
	}
}

// vetConfig mirrors the subset of cmd/go's vet config the tool needs.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one package unit described by a vet.cfg file,
// the per-package protocol the go command speaks to -vettool tools.
// Dependencies are imported from the compiler export data the go
// command already built, so no re-type-checking of the world happens.
func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apsslint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "apsslint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The suite computes no cross-package facts, but the go command
	// expects the output file of a vet run to exist for caching.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte("apsslint: no facts\n"), 0o666); err != nil {
				fmt.Fprintln(os.Stderr, "apsslint:", err)
			}
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	unit, err := analysis.Typecheck(fset, importer.ForCompiler(fset, "gc", lookup), cfg.ImportPath, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintln(os.Stderr, "apsslint:", err)
		return 1
	}
	diags, err := analysis.Run(unit, suite.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "apsslint:", err)
		return 1
	}
	writeVetx()
	if len(diags) > 0 {
		c := make(counts)
		report(os.Stderr, fset, diags, c)
		fmt.Fprintln(os.Stderr, c.summary())
		return 2
	}
	return 0
}
