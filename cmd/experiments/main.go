// Command experiments regenerates the tables and figures of the
// BayesLSH paper (Satuluri & Parthasarathy, PVLDB 2012) on the
// synthetic analogue datasets.
//
// Usage:
//
//	experiments -run fig3            # one experiment
//	experiments -run all -quick      # everything, trimmed matrices
//	experiments -list                # available experiment ids
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"bayeslsh/internal/harness"
)

func main() {
	run := flag.String("run", "all", "experiment id (fig1..fig5, tab1..tab5) or 'all'")
	quick := flag.Bool("quick", false, "trim datasets and thresholds for a fast run")
	seed := flag.Uint64("seed", 42, "random seed for all components")
	parallel := flag.Int("parallel", 0, "pipeline workers per engine (0 = NumCPU, 1 = sequential)")
	datasets := flag.String("datasets", "", "comma-separated dataset names to restrict to")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(harness.Experiments(), "\n"))
		return
	}
	cfg := harness.Config{Seed: *seed, Quick: *quick, Parallelism: *parallel}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}

	// Ctrl-C cancels the run through the ctx-aware search API: the
	// in-flight cell aborts with its pipeline goroutines drained,
	// instead of the process dying mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	ids := harness.Experiments()
	if *run != "all" {
		ids = strings.Split(*run, ",")
	}
	for _, id := range ids {
		start := time.Now()
		if err := harness.RunContext(ctx, id, os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			if errors.Is(err, context.Canceled) {
				os.Exit(130) // interrupted: 128 + SIGINT
			}
			os.Exit(1)
		}
		fmt.Printf("# [%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
