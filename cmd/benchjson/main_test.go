package main

import (
	"strings"
	"testing"
)

func bench(name string, ns float64) Benchmark {
	return Benchmark{Name: name, Iterations: 100, Metrics: map[string]float64{"ns/op": ns}}
}

func TestParseBenchLine(t *testing.T) {
	cases := []struct {
		line string
		name string
		ns   float64
		ok   bool
	}{
		{"BenchmarkAutoPlan-4   \t 1000 \t 1234.5 ns/op", "AutoPlan", 1234.5, true},
		{"BenchmarkCachedQuery 200 50 ns/op 16 B/op 1 allocs/op", "CachedQuery", 50, true},
		{"BenchmarkBroken trailing", "", 0, false},
		{"Benchmark stray log line that is not a result", "", 0, false},
	}
	for _, tc := range cases {
		b, ok := parseBenchLine(tc.line)
		if ok != tc.ok {
			t.Errorf("%q: ok=%v want %v", tc.line, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		if b.Name != tc.name || b.Metrics["ns/op"] != tc.ns {
			t.Errorf("%q: parsed %+v, want name %q ns/op %v", tc.line, b, tc.name, tc.ns)
		}
	}
}

func TestCompareRegression(t *testing.T) {
	base := Report{Benchmarks: []Benchmark{
		bench("AutoPlan", 1000),
		bench("CachedQuery", 100),
		bench("Retired", 42),
	}}

	// Within the margin on both shared benchmarks: green, and the
	// one-sided entries are reported without failing the run.
	cur := Report{Benchmarks: []Benchmark{
		bench("AutoPlan", 1100),   // +10%
		bench("CachedQuery", 80),  // improvement
		bench("BrandNew", 999999), // no baseline: informational only
	}}
	lines, regressed := compare(cur, base, 0.15)
	if regressed {
		t.Fatalf("within-margin run regressed:\n%s", strings.Join(lines, "\n"))
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"BrandNew: not in baseline", "Retired: in baseline but not in this run"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in:\n%s", want, joined)
		}
	}

	// One shared benchmark beyond the margin: the run fails and the
	// offender is named.
	cur.Benchmarks[0] = bench("AutoPlan", 1200) // +20%
	lines, regressed = compare(cur, base, 0.15)
	if !regressed {
		t.Fatal("+20% on a 15% margin did not regress")
	}
	if joined := strings.Join(lines, "\n"); !strings.Contains(joined, "AutoPlan: 1200 ns/op vs baseline 1000 (+20.0%) REGRESSED") {
		t.Errorf("regression line missing:\n%s", joined)
	}

	// A looser margin accepts the same run.
	if _, regressed := compare(cur, base, 0.25); regressed {
		t.Fatal("+20% on a 25% margin regressed")
	}
}
