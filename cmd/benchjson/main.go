// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so CI can publish benchmark results
// as an artifact and the perf trajectory can be tracked run over run:
//
//	go test -run '^$' -bench Live -benchmem . | benchjson -out BENCH_live.json
//
// Every benchmark line becomes one record carrying the iteration
// count and every reported metric — the standard ns/op, B/op and
// allocs/op plus any custom b.ReportMetric units (adds/s,
// p50-ns/query, ...). Context lines (goos, goarch, cpu, pkg) are
// captured into the header. benchjson exits 1 if the input contains a
// test failure or no benchmark lines at all, so a silently empty
// artifact cannot pass CI.
//
// With -baseline, the freshly parsed run is additionally compared
// against a committed baseline document: every benchmark present in
// both is checked on ns/op, and benchjson exits 1 if any regressed by
// more than -max-regress (default 0.15, i.e. 15%). Benchmarks present
// on only one side are reported but never fail the run, so adding or
// retiring a benchmark does not require touching the gate:
//
//	go test -run '^$' -bench Plan . | benchjson -out BENCH_plan.json -baseline BENCH_plan.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name with the Benchmark prefix and any
	// -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps each reported unit to its value (ns/op, B/op,
	// allocs/op, and any custom ReportMetric units).
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the top-level JSON document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	Timestamp  string      `json:"timestamp"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "committed baseline JSON; fail on ns/op regression against it")
	maxRegress := flag.Float64("max-regress", 0.15, "max relative ns/op regression allowed vs -baseline")
	flag.Parse()

	rep := Report{Timestamp: time.Now().UTC().Format(time.RFC3339)}
	failed := false
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Package = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "--- FAIL") || line == "FAIL" || strings.HasPrefix(line, "FAIL\t"):
			failed = true
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: reading stdin:", err)
		os.Exit(1)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchjson: input contains a FAIL line")
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines in input")
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')

	// Load the baseline before writing -out: the common CI invocation
	// compares against the committed file and then overwrites it with
	// the fresh run for the artifact upload.
	var base *Report
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		base = &Report{}
		if err := json.Unmarshal(raw, base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: baseline %s: %v\n", *baseline, err)
			os.Exit(1)
		}
	}

	if *out == "" {
		os.Stdout.Write(buf)
	} else {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(rep.Benchmarks), *out)
	}

	if base != nil {
		lines, regressed := compare(rep, *base, *maxRegress)
		for _, l := range lines {
			fmt.Fprintln(os.Stderr, "benchjson: "+l)
		}
		if regressed {
			fmt.Fprintf(os.Stderr, "benchjson: ns/op regression beyond %.0f%% vs %s\n", *maxRegress*100, *baseline)
			os.Exit(1)
		}
	}
}

// compare checks every benchmark shared between cur and base on
// ns/op: a per-benchmark report line is produced for each, and
// regressed is true if any exceeded base*(1+maxRegress). Benchmarks
// present on only one side are mentioned but never regress — adding
// or retiring a benchmark must not require a baseline dance to keep
// CI green.
func compare(cur, base Report, maxRegress float64) (lines []string, regressed bool) {
	baseNs := make(map[string]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		if ns, ok := b.Metrics["ns/op"]; ok {
			baseNs[b.Name] = ns
		}
	}
	seen := make(map[string]bool, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		seen[b.Name] = true
		old, ok := baseNs[b.Name]
		if !ok {
			lines = append(lines, fmt.Sprintf("%s: not in baseline (new benchmark)", b.Name))
			continue
		}
		ns, ok := b.Metrics["ns/op"]
		if !ok || old <= 0 {
			continue
		}
		delta := ns/old - 1
		verdict := "ok"
		if delta > maxRegress {
			verdict = "REGRESSED"
			regressed = true
		}
		lines = append(lines, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%+.1f%%) %s", b.Name, ns, old, delta*100, verdict))
	}
	for _, b := range base.Benchmarks {
		if !seen[b.Name] {
			lines = append(lines, fmt.Sprintf("%s: in baseline but not in this run (retired?)", b.Name))
		}
	}
	return lines, regressed
}

// parseBenchLine parses one "BenchmarkName[-P] N value unit value
// unit ..." line; malformed lines are skipped rather than fatal so a
// stray Benchmark-prefixed log line cannot break the artifact.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
