package bayeslsh

import (
	"context"
	"errors"
	"fmt"
	"time"

	"bayeslsh/internal/allpairs"
	"bayeslsh/internal/core"
	"bayeslsh/internal/exact"
	"bayeslsh/internal/minhash"
	"bayeslsh/internal/pair"
	"bayeslsh/internal/ppjoin"
	"bayeslsh/internal/shard"
	"bayeslsh/internal/sighash"
)

// Options configures one search. Zero-valued fields take the paper's
// defaults (§5.1): ε = γ = 0.03, δ = 0.05, k = 32 hashes per round,
// Lite budget h = 128 hashes for cosine and 64 for Jaccard, LSH false
// negative rate 0.03, LSH-Approx estimation over 2048 bits (cosine) or
// 360 hashes (Jaccard).
type Options struct {
	// Algorithm selects the pipeline.
	Algorithm Algorithm
	// AutoPipeline lets the engine pick Algorithm instead: the planner
	// (internal/planner, see docs/PLANNER.md) maps the corpus statistics
	// plus this request's measure and threshold to a concrete pipeline,
	// then the search runs exactly as if that pipeline had been set
	// explicitly — results are bit-identical to the explicit
	// configuration. When set, Algorithm is ignored. Output.Algorithm,
	// Index.Plan and LiveIndex.Plan report what was chosen.
	AutoPipeline bool
	// Threshold is the similarity threshold t (required, in (0, 1]).
	Threshold float64

	// Epsilon is BayesLSH's recall parameter ε; it also sets the LSH
	// candidate generation false negative rate when
	// FalseNegativeRate is unset.
	Epsilon float64
	// Delta, Gamma are BayesLSH's accuracy parameters.
	Delta, Gamma float64
	// K is the number of hashes BayesLSH compares per round.
	K int
	// LiteHashes is BayesLSH-Lite's hash budget h.
	LiteHashes int
	// MaxHashes caps the hashes BayesLSH examines per pair.
	MaxHashes int
	// PriorSample is the number of candidate pairs sampled to fit the
	// Jaccard Beta prior (default 1000).
	PriorSample int

	// OneBitMinhash switches Jaccard BayesLSH verification to 1-bit
	// minwise signatures (b-bit minhash, b = 1) — 32× smaller
	// signatures compared by XOR+popcount, at the cost of roughly
	// twice the hash comparisons for the same accuracy. An
	// implementation of the paper's §6 extension direction.
	OneBitMinhash bool

	// BandK is the number of hashes per LSH signature (band) for
	// candidate generation (default 8 bits for cosine measures, 3
	// minhashes for Jaccard).
	BandK int
	// MultiProbe enables 1-step multi-probe LSH candidate generation
	// (Lv et al., VLDB'07 — the paper's reference [17]) for the
	// cosine measures: each signature also probes the buckets whose
	// band key differs in one bit, so far fewer hash tables reach the
	// same false negative rate. Ignored for Jaccard.
	MultiProbe bool
	// FalseNegativeRate is the LSH candidate generation ε.
	FalseNegativeRate float64
	// ApproxHashes is the fixed hash count of LSH-Approx estimation.
	ApproxHashes int
}

func (o Options) withDefaults(m Measure) (Options, error) {
	if o.Threshold <= 0 || o.Threshold > 1 {
		return o, fmt.Errorf("bayeslsh: threshold %v outside (0, 1]", o.Threshold)
	}
	if o.Epsilon == 0 {
		o.Epsilon = 0.03
	}
	if o.Delta == 0 {
		o.Delta = 0.05
	}
	if o.Gamma == 0 {
		o.Gamma = 0.03
	}
	if o.K == 0 {
		o.K = 32
	}
	if o.LiteHashes == 0 {
		if m == Jaccard {
			o.LiteHashes = 64
		} else {
			o.LiteHashes = 128
		}
	}
	if o.MaxHashes == 0 {
		if m == Jaccard {
			o.MaxHashes = 512
		} else {
			o.MaxHashes = 2048
		}
	}
	if o.PriorSample == 0 {
		o.PriorSample = 1000
	}
	if o.BandK == 0 {
		if m == Jaccard {
			o.BandK = 3
		} else {
			o.BandK = 8
		}
	}
	if o.FalseNegativeRate == 0 {
		o.FalseNegativeRate = o.Epsilon
	}
	if o.ApproxHashes == 0 {
		if m == Jaccard {
			o.ApproxHashes = 360
		} else {
			o.ApproxHashes = 2048
		}
	}
	return o, nil
}

// Output reports the results and cost profile of one search.
type Output struct {
	// Algorithm and Threshold echo the request.
	Algorithm Algorithm
	Threshold float64
	// Results are the pairs found, with exact or estimated
	// similarities depending on the pipeline.
	Results []Result

	// Candidates is the number of candidate pairs generated; Pruned is
	// the number eliminated by BayesLSH pruning (0 for non-Bayes
	// pipelines); ExactVerified counts exact similarity computations
	// in the verification stage.
	Candidates    int
	Pruned        int
	ExactVerified int
	// HashesCompared is the number of hash comparisons spent in
	// verification.
	HashesCompared int64
	// SurvivorsByRound[i] is the number of candidates still alive
	// after (i+1)*K hashes (Bayes pipelines only) — Figure 4's series.
	SurvivorsByRound []int

	// CandGenTime and VerifyTime are the wall-clock costs of the two
	// phases; Total is their sum (the paper's "full execution time").
	// HashTime is the portion of those phases spent computing hash
	// signatures (lazy signature blocks are materialized inside the
	// phase that first needs them, so HashTime is part of Total, not
	// an addition to it). With EngineConfig.Parallelism > 1, HashTime
	// sums per-worker hashing time and can therefore exceed the
	// enclosing phase's wall clock.
	CandGenTime time.Duration
	VerifyTime  time.Duration
	HashTime    time.Duration
	Total       time.Duration
}

// Search runs one pipeline. Engines cache hash signatures, so
// repeated searches (e.g. threshold sweeps) only pay hashing once;
// HashTime reports the hashing cost incurred by this call. Search is
// SearchContext with context.Background() — it cannot be canceled.
func (e *Engine) Search(opts Options) (*Output, error) {
	return e.SearchContext(context.Background(), opts)
}

// SearchContext is Search with cooperative cancellation: every phase
// of every pipeline — candidate generation, BayesLSH rounds, exact
// verification — polls ctx and aborts promptly once it is done (see
// docs/CONTEXTS.md for the exact check granularity). A canceled
// search returns an error wrapping context.Canceled or
// context.DeadlineExceeded, with no partial Output and every pipeline
// goroutine drained. For a ctx that is never canceled the Output is
// bit-identical to Search's.
func (e *Engine) SearchContext(ctx context.Context, opts Options) (*Output, error) {
	o, err := opts.withDefaults(e.measure)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, ctxWrap(err)
	}
	if o.AutoPipeline {
		o, _ = e.resolveAuto(o, false)
	}
	out := &Output{Algorithm: o.Algorithm, Threshold: o.Threshold}
	hashBefore := e.hashElapsed()

	switch o.Algorithm {
	case BruteForce:
		start := time.Now()
		rs, err := exact.SearchCtx(ctx, e.workInput(), toExactMeasure(e.measure), o.Threshold, e.workers())
		if err != nil {
			return nil, ctxWrap(err)
		}
		out.VerifyTime = time.Since(start)
		out.Results = fromResults(rs)
		out.ExactVerified = e.ds.Len() * (e.ds.Len() - 1) / 2

	case AllPairs:
		start := time.Now()
		rs, err := allpairs.SearchMeasureCtx(ctx, e.workInput(), toExactMeasure(e.measure), o.Threshold, e.workers(), e.cfg.BatchSize)
		if err != nil {
			return nil, ctxWrap(err)
		}
		out.VerifyTime = time.Since(start)
		out.Results = fromResults(rs)

	case PPJoin:
		if e.measure == Cosine {
			return nil, fmt.Errorf("bayeslsh: PPJoin supports binary measures only")
		}
		start := time.Now()
		rs, err := ppjoin.SearchCtx(ctx, e.workInput(), toExactMeasure(e.measure), o.Threshold)
		if err != nil {
			return nil, ctxWrap(err)
		}
		out.VerifyTime = time.Since(start)
		out.Results = fromResults(rs)

	case AllPairsBayesLSH, AllPairsBayesLSHLite, LSH, LSHApprox, LSHBayesLSH, LSHBayesLSHLite:
		if err := e.searchTwoPhase(ctx, o, out); err != nil {
			return nil, ctxWrap(err)
		}

	default:
		return nil, fmt.Errorf("bayeslsh: unknown algorithm %v", o.Algorithm)
	}

	out.HashTime = e.hashElapsed() - hashBefore
	out.Total = out.CandGenTime + out.VerifyTime
	return out, nil
}

// ctxWrap moves a cancellation error into the library's error space,
// preserving errors.Is(err, context.Canceled / DeadlineExceeded).
// Non-cancellation errors pass through untouched.
func ctxWrap(err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("bayeslsh: search aborted: %w", err)
	}
	return err
}

// searchTwoPhase runs the candidate-generation + verification
// pipelines. Both phases shard over the engine's worker pool when
// EngineConfig.Parallelism exceeds one; candidates are sorted between
// the phases so that everything downstream of generation (prior
// sampling, verification order, output order) is deterministic for a
// fixed Seed regardless of worker count — and of Go's map iteration
// order, which already shuffled the banded-LSH candidate stream
// run-to-run in the sequential pipeline. Cancellation aborts either
// phase (raw ctx errors; SearchContext wraps them).
func (e *Engine) searchTwoPhase(ctx context.Context, o Options, out *Output) error {
	// Phase 1: candidates.
	start := time.Now()
	cands, err := e.candidates(ctx, o)
	if err != nil {
		return err
	}
	pair.SortPairs(cands)
	out.CandGenTime = time.Since(start)
	out.Candidates = len(cands)

	workers, batch := e.workers(), e.cfg.BatchSize

	// Phase 2: verification.
	start = time.Now()
	switch o.Algorithm {
	case LSH:
		rs, err := exact.VerifyCtx(ctx, e.workInput(), toExactMeasure(e.measure), o.Threshold, cands, workers, batch)
		if err != nil {
			return err
		}
		out.Results = fromResults(rs)
		out.ExactVerified = len(cands)

	case LSHApprox:
		rs, used, err := e.approxVerifyCtx(ctx, o, cands)
		if err != nil {
			return err
		}
		out.Results = rs
		out.HashesCompared = int64(len(cands)) * int64(used)

	case AllPairsBayesLSH, LSHBayesLSH:
		v, err := e.bayesVerifier(ctx, o, cands)
		if err != nil {
			return err
		}
		rs, st, err := v.VerifyParallelCtx(ctx, cands, workers, batch)
		if err != nil {
			return err
		}
		if o.Algorithm == AllPairsBayesLSH {
			rs = e.dropSubThreshold(rs, o.Threshold, &st)
		}
		out.Results = fromResults(rs)
		fillStats(out, st)

	case AllPairsBayesLSHLite, LSHBayesLSHLite:
		v, err := e.bayesVerifier(ctx, o, cands)
		if err != nil {
			return err
		}
		rs, st, err := v.VerifyLiteParallelCtx(ctx, cands, o.LiteHashes, e.exactSim, workers, batch)
		if err != nil {
			return err
		}
		out.Results = fromResults(rs)
		fillStats(out, st)
	}
	out.VerifyTime = time.Since(start)
	return ctx.Err()
}

// candidates runs the two-phase pipelines' candidate-generation phase
// for the options' algorithm: the AllPairs scan for the AP pipelines,
// banded LSH otherwise. Shared by SearchContext, Stream and
// BuildIndex so the candidate stream cannot drift between them.
func (e *Engine) candidates(ctx context.Context, o Options) ([]pair.Pair, error) {
	switch o.Algorithm {
	case AllPairsBayesLSH, AllPairsBayesLSHLite:
		return e.allPairsCandidates(ctx, o)
	default:
		return e.lshCandidates(ctx, o)
	}
}

// dropSubThreshold removes accepted pairs whose exact similarity is
// below the threshold, counting each exact computation in st. The
// AllPairs candidate stream is the one direction-dependent stage of
// the two-phase pipelines: the batch scan evaluates the cheap
// candidate bound in processing order, while a query probe evaluates
// it from the query's side, so the two candidate sets can differ — but
// only on sub-threshold pairs, because the bound is an upper bound on
// similarity. Exact-verifying the accepted pairs (an output-sized
// cost, not a candidate-sized one; pruning still avoids exact
// similarities for the overwhelming majority of candidates) removes
// exactly those pairs from both paths, which is what makes
// AllPairsBayesLSH query results strictly equal to batch results.
// Accepted survivors keep their estimated similarity — acceptance,
// not reporting, uses the exact value. See Index.verify for the
// query-side twin of this filter, and docs/QUERYING.md.
func (e *Engine) dropSubThreshold(rs []pair.Result, t float64, st *core.Stats) []pair.Result {
	kept := rs[:0]
	for _, r := range rs {
		st.ExactVerified++
		if e.exactSim(r.A, r.B) >= t {
			kept = append(kept, r)
		}
	}
	return kept
}

// fillStats copies verifier statistics into the output.
func fillStats(out *Output, st core.Stats) {
	out.Pruned = st.Pruned
	out.ExactVerified = st.ExactVerified
	out.HashesCompared = st.HashesCompared
	out.SurvivorsByRound = st.SurvivorsByRound
}

// approxEstimator prepares the classical LSH estimation of §3: it
// clamps the requested hash count to the signature budget, fills every
// signature that deep (cancelable between vectors), and returns the
// per-pair estimator plus the hash count actually used. Batch,
// ctx-aware and streaming estimation all share this one setup so they
// cannot drift.
func (e *Engine) approxEstimator(ctx context.Context, o Options) (func(pair.Pair) float64, int, error) {
	workers := e.workers()
	if e.measure == Jaccard {
		st := e.minSigStore()
		n := min(o.ApproxHashes, st.MaxHashes())
		if err := st.EnsureAllCtx(ctx, n, workers); err != nil {
			return nil, 0, err
		}
		sigs := st.Sigs()
		return func(p pair.Pair) float64 {
			return approxJaccardEstimate(minhash.Matches(sigs[p.A], sigs[p.B], 0, n), n)
		}, n, nil
	}
	st := e.bitSigStore()
	n := min(o.ApproxHashes, st.MaxBits())
	if err := st.EnsureAllCtx(ctx, n, workers); err != nil {
		return nil, 0, err
	}
	sigs := st.Sigs()
	return func(p pair.Pair) float64 {
		return approxCosineEstimate(sighash.MatchCount(sigs[p.A], sigs[p.B], 0, n), n)
	}, n, nil
}

// approxVerifyCtx runs §3 fixed-hash estimation over the candidates,
// keeping pairs whose estimate meets the threshold, with cooperative
// cancellation (polled per pair). It returns the results and the hash
// count actually used. Estimation shards over the engine's worker
// pool; each pair's estimate depends only on its two signatures, so
// the output matches the sequential scan exactly.
func (e *Engine) approxVerifyCtx(ctx context.Context, o Options, cands []pair.Pair) ([]Result, int, error) {
	est, n, err := e.approxEstimator(ctx, o)
	if err != nil {
		return nil, 0, err
	}
	if ctx.Done() == nil {
		return e.estimateBatches(cands, est, o.Threshold), n, nil
	}
	stop := shard.NewStopper(ctx)
	defer stop.Close()
	rs, err := shard.CollectCtx(ctx, len(cands), e.workers(), e.cfg.BatchSize, func(lo, hi int) []Result {
		var out []Result
		for _, p := range cands[lo:hi] {
			if stop.Stopped() {
				return nil
			}
			if s := est(p); s >= o.Threshold {
				out = append(out, Result{A: int(p.A), B: int(p.B), Sim: s})
			}
		}
		return out
	})
	if err != nil {
		return nil, 0, err
	}
	return rs, n, nil
}

// approxJaccardEstimate is the §3 maximum-likelihood Jaccard estimate
// after m of n minhashes matched. Shared by the batch LSHApprox
// pipeline and the index's query path so the two cannot drift.
func approxJaccardEstimate(m, n int) float64 { return float64(m) / float64(n) }

// approxCosineEstimate is the §3 estimate for cosine: the match rate
// clamped to the collision-probability support [0.5, 1], mapped back
// to cosine space.
func approxCosineEstimate(m, n int) float64 {
	return sighash.RToCosine(clamp(float64(m)/float64(n), 0.5, 1))
}

// estimateBatches applies est to every candidate over the engine's
// worker pool, keeping pairs whose estimate meets the threshold.
// Batches are concatenated in order, so the result is independent of
// scheduling.
func (e *Engine) estimateBatches(cands []pair.Pair, est func(pair.Pair) float64, t float64) []Result {
	return shard.Collect(len(cands), e.workers(), e.cfg.BatchSize, func(lo, hi int) []Result {
		var out []Result
		for _, p := range cands[lo:hi] {
			if s := est(p); s >= t {
				out = append(out, Result{A: int(p.A), B: int(p.B), Sim: s})
			}
		}
		return out
	})
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func fromResults(rs []pair.Result) []Result {
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = Result{A: int(r.A), B: int(r.B), Sim: r.Sim}
	}
	return out
}
