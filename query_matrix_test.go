package bayeslsh_test

import (
	"bytes"
	"math"
	"testing"

	"bayeslsh"
	"bayeslsh/internal/harness"
)

// The build-once/query-many consistency matrix, driven through the
// public API only (hence the external test package) and over the
// shared internal/harness grid — the same cells the HTTP serving and
// sharded-cluster suites walk, so all three consistency guarantees
// cover the identical measure × pipeline space.

// matrixDataset builds the 300-vector synthetic corpus through the
// public surface: generate, round-trip through the on-disk format
// (so the test also covers WriteTo/ReadDataset fidelity), and trim
// with Dataset.Slice.
func matrixDataset(t *testing.T, n int) *bayeslsh.Dataset {
	t.Helper()
	full, err := bayeslsh.Synthetic("RCV1-sim")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := full.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	reread, err := bayeslsh.ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return reread.Slice(0, n)
}

// TestQueryMatchesBatchMatrix is the build-once/query-many consistency
// guarantee: for every measure and pipeline of the shared matrix,
// querying the index with dataset vector i returns exactly the pairs
// involving i that the batch search finds at the same threshold and
// Seed — identical ids, and identical similarities (to the last bit
// for the hash-based pipelines; within float tolerance for AllPairs'
// accumulated exact sims, which sum in a different order).
func TestQueryMatchesBatchMatrix(t *testing.T) {
	const n = 300
	for _, tc := range harness.QueryCells() {
		tc := tc
		t.Run(tc.Measure.String(), func(t *testing.T) {
			ds := tc.Prep(matrixDataset(t, n))
			for _, alg := range harness.QueryPipelines() {
				eng, err := bayeslsh.NewEngine(ds, tc.Measure, tc.Config)
				if err != nil {
					t.Fatal(err)
				}
				opts := bayeslsh.Options{Algorithm: alg, Threshold: tc.Threshold}
				batch, err := eng.Search(opts)
				if err != nil {
					t.Fatalf("%v: %v", alg, err)
				}
				ix, err := eng.BuildIndex(opts)
				if err != nil {
					t.Fatalf("%v: %v", alg, err)
				}
				partners := harness.BatchPartners(batch, ds.Len())
				tol := 0.0
				if alg == bayeslsh.AllPairs {
					tol = 1e-12
				}
				checked := 0
				for i := 0; i < ds.Len(); i++ {
					ms, err := ix.Query(ds.Vector(i), bayeslsh.QueryOptions{})
					if err != nil {
						t.Fatalf("%v: query %d: %v", alg, i, err)
					}
					got := map[int]float64{}
					for _, m := range ms {
						if m.ID == i {
							continue // self-match
						}
						got[m.ID] = m.Sim
					}
					want := partners[i]
					for id, ws := range want {
						gs, ok := got[id]
						if !ok {
							t.Fatalf("%v: query %d missing partner %d (batch sim %v)", alg, i, id, ws)
						}
						if math.Abs(gs-ws) > tol {
							t.Fatalf("%v: query %d partner %d sim %v, batch %v", alg, i, id, gs, ws)
						}
					}
					for id, gs := range got {
						if _, ok := want[id]; !ok {
							t.Fatalf("%v: query %d extra partner %d (sim %v)", alg, i, id, gs)
						}
					}
					checked += len(want)
				}
				if checked == 0 {
					t.Fatalf("%v: no batch pairs to cross-check", alg)
				}
			}
		})
	}
}
