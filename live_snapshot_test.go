package bayeslsh

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"bayeslsh/internal/vector"
)

// liveRoundTrip serializes a live index and loads it back.
func liveRoundTrip(t *testing.T, li *LiveIndex) *LiveIndex {
	t.Helper()
	var buf bytes.Buffer
	n, err := li.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	loaded, err := ReadLiveIndex(bytes.NewReader(buf.Bytes()), LiveConfig{})
	if err != nil {
		t.Fatalf("ReadLiveIndex: %v", err)
	}
	return loaded
}

// TestLiveSnapshotRoundTrip is the live persistence guarantee: a
// mutated live index — adds, deletes, a merge, more mutations —
// snapshots the full generation state, and the loaded index serves
// bit-identical results AND accepts further mutations continuing the
// saved id sequence exactly like the writer would have.
func TestLiveSnapshotRoundTrip(t *testing.T) {
	const seedN, poolN = 80, 140
	algs := []Algorithm{LSH, LSHBayesLSH, AllPairsBayesLSHLite}
	for _, tc := range queryTestConfigs() {
		tc := tc
		t.Run(tc.measure.String(), func(t *testing.T) {
			pool := tc.prep(smallDataset(t, poolN))
			for _, alg := range algs {
				opts := Options{Algorithm: alg, Threshold: tc.threshold}
				seed := &Dataset{c: &vector.Collection{Dim: pool.Dim(), Vecs: pool.c.Vecs[:seedN]}}
				li, err := NewLiveIndex(seed, tc.measure, tc.cfg, opts, LiveConfig{MaxDelta: -1, MaxRatio: -1})
				if err != nil {
					t.Fatalf("%v: %v", alg, err)
				}
				s := &liveScript{t: t, li: li}
				for i := 0; i < seedN; i++ {
					s.ids = append(s.ids, i)
					s.vecs = append(s.vecs, seed.c.Vecs[i])
				}
				// add → delete → merge → add → delete: the snapshot must
				// carry a non-trivial id map, tombstones and a delta.
				for i := seedN; i < seedN+25; i++ {
					s.add(pool.Vector(i))
				}
				s.del(5)
				s.del(seedN + 3)
				li.Compact()
				for i := seedN + 25; i < seedN+40; i++ {
					s.add(pool.Vector(i))
				}
				s.del(seedN + 30)

				loaded := liveRoundTrip(t, li)
				defer loaded.Close()
				queries := s.liveQueries([]Vec{pool.Vector(5), pool.Vector(seedN + 30)})
				for _, q := range queries {
					want, err := li.Query(q, QueryOptions{})
					if err != nil {
						t.Fatal(err)
					}
					got, err := loaded.Query(q, QueryOptions{})
					if err != nil {
						t.Fatal(err)
					}
					requireSameMatches(t, [][]Match{got}, [][]Match{want})
					wk, err := li.TopK(q, 4)
					if err != nil {
						t.Fatal(err)
					}
					gk, err := loaded.TopK(q, 4)
					if err != nil {
						t.Fatal(err)
					}
					requireSameMatches(t, [][]Match{gk}, [][]Match{wk})
				}
				li.Close()

				// The loaded index continues the id sequence and stays
				// cold-equivalent through further mutations and a merge.
				s.li = loaded
				wantNext := loaded.Stats().NextID
				if id := s.add(pool.Vector(seedN + 40)); id != wantNext {
					t.Fatalf("%v: post-load Add id %d, want %d", alg, id, wantNext)
				}
				s.del(s.ids[10])
				loaded.Compact()
				cold := s.coldEquivalent(pool.Dim(), tc.measure, tc.cfg, opts)
				s.checkEquivalent(cold, s.liveQueries(nil), fmt.Sprintf("%v/post-load", alg))
			}
		})
	}
}

// TestLiveSnapshotVersionErrors pins the cross-loading errors: each
// loader names the other when handed the wrong format version.
func TestLiveSnapshotVersionErrors(t *testing.T) {
	ds := smallDataset(t, 40).TfIdf().Normalize()
	ix, err := NewIndex(ds, Cosine, EngineConfig{Seed: 5, SignatureBits: 512},
		Options{Algorithm: LSH, Threshold: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	var v1 bytes.Buffer
	if _, err := ix.WriteTo(&v1); err != nil {
		t.Fatal(err)
	}
	li, err := LiveFrom(ix, LiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer li.Close()
	if _, err := li.Add(ds.Vector(0)); err != nil {
		t.Fatal(err)
	}
	var v2 bytes.Buffer
	if _, err := li.WriteTo(&v2); err != nil {
		t.Fatal(err)
	}

	if _, err := ReadLiveIndex(bytes.NewReader(v1.Bytes()), LiveConfig{}); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("ReadLiveIndex(v1 bytes) = %v, want ErrSnapshotVersion", err)
	}
	if _, err := ReadIndex(bytes.NewReader(v2.Bytes())); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("ReadIndex(v2 bytes) = %v, want ErrSnapshotVersion", err)
	}
	// Truncation and corruption still surface as the typed errors.
	if _, err := ReadLiveIndex(bytes.NewReader(v2.Bytes()[:v2.Len()-3]), LiveConfig{}); !errors.Is(err, ErrSnapshotChecksum) {
		t.Fatalf("truncated live snapshot = %v, want ErrSnapshotChecksum", err)
	}
	mangled := append([]byte(nil), v2.Bytes()...)
	mangled[len(mangled)/2] ^= 0x40
	if _, err := ReadLiveIndex(bytes.NewReader(mangled), LiveConfig{}); !errors.Is(err, ErrSnapshotChecksum) {
		t.Fatalf("corrupted live snapshot = %v, want ErrSnapshotChecksum", err)
	}
}

// TestLiveSnapshotFileHelpers covers the SaveFile/LoadLiveFile pair,
// including atomic replacement of an existing snapshot.
func TestLiveSnapshotFileHelpers(t *testing.T) {
	ds := smallDataset(t, 40).Binarize()
	li, err := NewLiveIndex(ds, Jaccard, EngineConfig{Seed: 8},
		Options{Algorithm: LSHApprox, Threshold: 0.4}, LiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer li.Close()
	path := filepath.Join(t.TempDir(), "live.snap")
	if err := li.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := li.Add(ds.Vector(1)); err != nil {
		t.Fatal(err)
	}
	li.Delete(3)
	if err := li.SaveFile(path); err != nil { // atomic overwrite
		t.Fatal(err)
	}
	loaded, err := LoadLiveFile(path, LiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if got, want := loaded.Stats(), li.Stats(); got.Base != want.Base || got.Delta != want.Delta ||
		got.Live != want.Live || got.Dead != want.Dead || got.NextID != want.NextID {
		t.Fatalf("loaded stats %+v, want %+v", got, want)
	}
	want, err := li.Query(ds.Vector(2), QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Query(ds.Vector(2), QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	requireSameMatches(t, [][]Match{got}, [][]Match{want})
}

// TestGoldenLiveSnapshot reads the committed version-2 snapshot — the
// compatibility contract of the live format: if HEAD can no longer
// read it, version 2 has been broken and LiveSnapshotVersion must be
// bumped instead. Regenerate deliberately with -update after such a
// bump.
func TestGoldenLiveSnapshot(t *testing.T) {
	const path = "testdata/v2.snap"
	if *updateGolden {
		li := goldenLiveIndex(t)
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := li.SaveFile(path); err != nil {
			t.Fatal(err)
		}
		li.Close()
	}
	loaded, err := LoadLiveFile(path, LiveConfig{})
	if err != nil {
		t.Fatalf("HEAD cannot read the committed v2 snapshot: %v", err)
	}
	defer loaded.Close()
	// The golden index must also still serve: replay the same script
	// from source data and require identical results.
	fresh := goldenLiveIndex(t)
	defer fresh.Close()
	ds := goldenDataset()
	for i := 0; i < ds.Len(); i++ {
		want, err := fresh.Query(ds.Vector(i), QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Query(ds.Vector(i), QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		requireSameMatches(t, [][]Match{got}, [][]Match{want})
	}
}

// goldenLiveIndex replays the fixed mutation script behind
// testdata/v2.snap: seed with the golden corpus, ingest its first
// eight vectors again (self-similar pairs), delete a few, merge, and
// leave a small delta and tombstone shadow in the snapshot.
func goldenLiveIndex(t *testing.T) *LiveIndex {
	t.Helper()
	ds := goldenDataset()
	li, err := NewLiveIndex(ds, Cosine, EngineConfig{Seed: 41, SignatureBits: 256},
		Options{Algorithm: LSHBayesLSH, Threshold: 0.6}, LiveConfig{MaxDelta: -1, MaxRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := li.Add(ds.Vector(i)); err != nil {
			t.Fatal(err)
		}
	}
	li.Delete(2)
	li.Delete(ds.Len() + 1)
	li.Compact()
	for i := 8; i < 12; i++ {
		if _, err := li.Add(ds.Vector(i)); err != nil {
			t.Fatal(err)
		}
	}
	li.Delete(5)
	return li
}
