package bayeslsh

import "testing"

func TestOptionsDefaultsPerMeasure(t *testing.T) {
	oc, err := Options{Threshold: 0.7}.withDefaults(Cosine)
	if err != nil {
		t.Fatal(err)
	}
	if oc.Epsilon != 0.03 || oc.Delta != 0.05 || oc.Gamma != 0.03 {
		t.Errorf("cosine quality defaults: %+v", oc)
	}
	if oc.K != 32 || oc.LiteHashes != 128 || oc.MaxHashes != 2048 ||
		oc.BandK != 8 || oc.ApproxHashes != 2048 {
		t.Errorf("cosine hash defaults: %+v", oc)
	}
	if oc.FalseNegativeRate != oc.Epsilon {
		t.Errorf("fn rate should default to epsilon: %+v", oc)
	}
	oj, err := Options{Threshold: 0.5}.withDefaults(Jaccard)
	if err != nil {
		t.Fatal(err)
	}
	if oj.LiteHashes != 64 || oj.MaxHashes != 512 || oj.BandK != 3 || oj.ApproxHashes != 360 {
		t.Errorf("jaccard hash defaults: %+v", oj)
	}
}

func TestOptionsExplicitValuesKept(t *testing.T) {
	o, err := Options{
		Threshold: 0.6, Epsilon: 0.01, Delta: 0.02, Gamma: 0.04,
		K: 64, LiteHashes: 256, MaxHashes: 1024, BandK: 16,
		FalseNegativeRate: 0.1, ApproxHashes: 100, PriorSample: 5,
	}.withDefaults(Cosine)
	if err != nil {
		t.Fatal(err)
	}
	if o.Epsilon != 0.01 || o.K != 64 || o.LiteHashes != 256 || o.MaxHashes != 1024 ||
		o.BandK != 16 || o.FalseNegativeRate != 0.1 || o.ApproxHashes != 100 || o.PriorSample != 5 {
		t.Errorf("explicit options overwritten: %+v", o)
	}
}

func TestSearchWithCustomBandK(t *testing.T) {
	ds := smallDataset(t, 200).TfIdf().Normalize()
	eng, err := NewEngine(ds, Cosine, EngineConfig{Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	truth, err := eng.Search(Options{Algorithm: AllPairs, Threshold: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	// k is held to values whose table count l = ⌈log ε/log(1−r^k)⌉
	// fits the default 2048-bit signature budget at t=0.7; larger k
	// would clamp l and intentionally trade recall for the budget.
	for _, bandK := range []int{4, 8, 12} {
		out, err := eng.Search(Options{Algorithm: LSH, Threshold: 0.7, BandK: bandK})
		if err != nil {
			t.Fatalf("BandK=%d: %v", bandK, err)
		}
		if rec := recallOf(out.Results, truth.Results); rec < 0.9 {
			t.Errorf("BandK=%d: recall %v", bandK, rec)
		}
	}
}

func TestSearchBandBudgetClamped(t *testing.T) {
	// A tiny signature budget forces the table count to clamp; the
	// search must still run (with reduced recall guarantees) rather
	// than error out.
	ds := smallDataset(t, 150).TfIdf().Normalize()
	eng, err := NewEngine(ds, Cosine, EngineConfig{Seed: 16, SignatureBits: 128})
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.Search(Options{Algorithm: LSH, Threshold: 0.5, MaxHashes: 128, ApproxHashes: 128})
	if err != nil {
		t.Fatal(err)
	}
	if out.Candidates == 0 {
		t.Error("clamped search generated no candidates at all")
	}
}

func TestApproxHashesClampedToBudget(t *testing.T) {
	ds := smallDataset(t, 150).TfIdf().Normalize()
	eng, err := NewEngine(ds, Cosine, EngineConfig{Seed: 17, SignatureBits: 256})
	if err != nil {
		t.Fatal(err)
	}
	// ApproxHashes defaults to 2048 > budget 256; must clamp, not panic.
	out, err := eng.Search(Options{Algorithm: LSHApprox, Threshold: 0.7, MaxHashes: 256})
	if err != nil {
		t.Fatal(err)
	}
	_ = out
}

func TestMultiProbeOption(t *testing.T) {
	ds := smallDataset(t, 300).TfIdf().Normalize()
	eng, err := NewEngine(ds, Cosine, EngineConfig{Seed: 18})
	if err != nil {
		t.Fatal(err)
	}
	th := 0.7
	truth, err := eng.Search(Options{Algorithm: AllPairs, Threshold: th})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := eng.Search(Options{Algorithm: LSHBayesLSHLite, Threshold: th})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := eng.Search(Options{Algorithm: LSHBayesLSHLite, Threshold: th, MultiProbe: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec := recallOf(mp.Results, truth.Results); rec < 0.9 {
		t.Errorf("multi-probe recall %v", rec)
	}
	// The point of multi-probing: matching recall from fewer tables,
	// i.e. fewer signature bits consumed by candidate generation.
	if plain.Candidates == 0 || mp.Candidates == 0 {
		t.Fatalf("candidate counts: plain %d, multiprobe %d", plain.Candidates, mp.Candidates)
	}
}

func TestMeasureAccessor(t *testing.T) {
	ds := smallDataset(t, 50)
	eng, err := NewEngine(ds, BinaryCosine, EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Measure() != BinaryCosine {
		t.Errorf("Measure() = %v", eng.Measure())
	}
}
