package bayeslsh

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"testing"
	"time"
)

// The cancellation matrix: every public entry point, for every
// pipeline, must (a) return an error wrapping context.Canceled or
// context.DeadlineExceeded when its context dies — before any work
// for a pre-canceled context, promptly when canceled mid-search —
// (b) leak no goroutines doing so, and (c) behave bit-identically to
// the non-ctx entry points while the context stays alive.

// cancelCases is the measure × threshold matrix the context tests run
// over; Algorithms(measure) + BruteForce then covers all 8 pipelines.
var cancelCases = []struct {
	measure Measure
	t       float64
}{
	{Cosine, 0.7},
	{Jaccard, 0.5},
}

// cancelTestEngine builds an engine over a trimmed corpus.
func cancelTestEngine(t *testing.T, m Measure, n, workers int) *Engine {
	t.Helper()
	ds := smallDataset(t, n)
	if m == Cosine {
		ds = ds.TfIdf().Normalize()
	} else {
		ds = ds.Binarize()
	}
	eng, err := NewEngine(ds, m, EngineConfig{Seed: 42, Parallelism: workers})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// requireCanceled fails unless err wraps context.Canceled or
// context.DeadlineExceeded.
func requireCanceled(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		t.Fatal("expected a cancellation error, got nil")
	}
	if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v wraps neither context.Canceled nor context.DeadlineExceeded", err)
	}
}

// requireNoGoroutineLeak polls until the goroutine count returns to
// the recorded baseline, dumping all stacks on timeout. (Counts can
// transiently exceed the baseline while canceled workers drain; they
// must settle.)
func requireNoGoroutineLeak(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d goroutines, baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSearchContextPreCanceled: a context canceled before the call
// returns ctx.Err() immediately — before candidate generation or
// hashing — for every one of the 8 pipelines, and Stream yields
// exactly one (zero, error) element.
func TestSearchContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range cancelCases {
		eng := cancelTestEngine(t, tc.measure, 200, 2)
		for _, alg := range append(Algorithms(tc.measure), BruteForce) {
			t.Run(fmt.Sprintf("%v/%v", tc.measure, alg), func(t *testing.T) {
				opts := Options{Algorithm: alg, Threshold: tc.t}
				if _, err := eng.SearchContext(ctx, opts); true {
					requireCanceled(t, err)
				}
				seen := 0
				for r, err := range eng.Stream(ctx, opts) {
					seen++
					if r != (Result{}) {
						t.Errorf("pre-canceled Stream yielded a pair: %+v", r)
					}
					requireCanceled(t, err)
				}
				if seen != 1 {
					t.Errorf("pre-canceled Stream yielded %d elements, want exactly 1 error", seen)
				}
			})
		}
	}
}

// TestSearchCancelableContextEqualsSearch: a live (cancelable but
// never canceled) context must not change anything — the ctx-aware
// code paths produce bit-identical Output for every pipeline.
func TestSearchCancelableContextEqualsSearch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, tc := range cancelCases {
		eng := cancelTestEngine(t, tc.measure, 600, 4)
		for _, alg := range append(Algorithms(tc.measure), BruteForce) {
			t.Run(fmt.Sprintf("%v/%v", tc.measure, alg), func(t *testing.T) {
				opts := Options{Algorithm: alg, Threshold: tc.t}
				want, err := eng.Search(opts)
				if err != nil {
					t.Fatal(err)
				}
				got, err := eng.SearchContext(ctx, opts)
				if err != nil {
					t.Fatal(err)
				}
				requireIdentical(t, want, got)
			})
		}
	}
}

// sortedResults orders results by (A, B) — the canonical order for
// comparing a stream (unordered by contract) against batch output.
func sortedResults(rs []Result) []Result {
	out := append([]Result(nil), rs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// TestStreamMatchesSearch: collected and sorted, the stream equals
// Search's result set exactly — pairs and similarities — for every
// measure × pipeline.
func TestStreamMatchesSearch(t *testing.T) {
	for _, tc := range cancelCases {
		eng := cancelTestEngine(t, tc.measure, 600, 4)
		for _, alg := range append(Algorithms(tc.measure), BruteForce) {
			t.Run(fmt.Sprintf("%v/%v", tc.measure, alg), func(t *testing.T) {
				opts := Options{Algorithm: alg, Threshold: tc.t}
				want, err := eng.Search(opts)
				if err != nil {
					t.Fatal(err)
				}
				var got []Result
				for r, err := range eng.Stream(context.Background(), opts) {
					if err != nil {
						t.Fatal(err)
					}
					got = append(got, r)
				}
				ws, gs := sortedResults(want.Results), sortedResults(got)
				if len(ws) != len(gs) {
					t.Fatalf("stream delivered %d pairs, Search %d", len(gs), len(ws))
				}
				for i := range ws {
					if ws[i] != gs[i] {
						t.Fatalf("result %d: stream %+v, Search %+v", i, gs[i], ws[i])
					}
				}
			})
		}
	}
}

// TestSearchContextCancelMidSearch cancels a search that is already
// running and requires a prompt, leak-free abort. BruteForce over the
// full corpus guarantees the search is still in its O(n²)
// verification when the cancel lands; the Bayes pipeline exercises
// the kernel's between-rounds abort.
func TestSearchContextCancelMidSearch(t *testing.T) {
	cases := []struct {
		name    string
		measure Measure
		opts    Options
	}{
		{"bruteforce", Cosine, Options{Algorithm: BruteForce, Threshold: 0.5}},
		{"lsh-bayes", Cosine, Options{Algorithm: LSHBayesLSH, Threshold: 0.5}},
		{"ap-bayes-lite", Jaccard, Options{Algorithm: AllPairsBayesLSHLite, Threshold: 0.3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := cancelTestEngine(t, tc.measure, 4000, 4)
			base := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(20 * time.Millisecond)
				cancel()
			}()
			start := time.Now()
			out, err := eng.SearchContext(ctx, tc.opts)
			elapsed := time.Since(start)
			if err == nil {
				// The search outran the cancel — possible on a fast
				// machine; the equality tests cover this path.
				t.Skipf("search finished in %v before the cancel landed (%d pairs)", elapsed, len(out.Results))
			}
			requireCanceled(t, err)
			if out != nil {
				t.Error("canceled search returned a partial Output")
			}
			// Prompt: far below what the full search would take, even
			// under the race detector.
			if elapsed > 3*time.Second {
				t.Errorf("canceled search returned only after %v", elapsed)
			}
			requireNoGoroutineLeak(t, base)
		})
	}
}

// TestStreamCancelAndBreak covers the stream's two teardown paths:
// ctx canceled mid-iteration (the iterator must end with exactly one
// error element) and the consumer breaking out early (no error, no
// leaked pipeline goroutines either way).
func TestStreamCancelAndBreak(t *testing.T) {
	t.Run("cancel-mid-stream", func(t *testing.T) {
		eng := cancelTestEngine(t, Cosine, 4000, 4)
		base := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var pairs int
		var lastErr error
		for r, err := range eng.Stream(ctx, Options{Algorithm: BruteForce, Threshold: 0.5}) {
			if err != nil {
				lastErr = err
				continue
			}
			_ = r
			pairs++
			if pairs == 1 {
				cancel() // first pair seen: kill the pipeline under it
			}
		}
		if lastErr == nil {
			t.Skip("stream drained before the cancel propagated")
		}
		requireCanceled(t, lastErr)
		requireNoGoroutineLeak(t, base)
	})
	t.Run("break-early", func(t *testing.T) {
		eng := cancelTestEngine(t, Cosine, 1000, 4)
		base := runtime.NumGoroutine()
		seen := 0
		for _, err := range eng.Stream(context.Background(), Options{Algorithm: LSHBayesLSH, Threshold: 0.7}) {
			if err != nil {
				t.Fatalf("break-early stream yielded error: %v", err)
			}
			seen++
			if seen == 3 {
				break
			}
		}
		if seen != 3 {
			t.Fatalf("expected to break after 3 pairs, saw %d", seen)
		}
		requireNoGoroutineLeak(t, base)
	})
	t.Run("deadline", func(t *testing.T) {
		eng := cancelTestEngine(t, Cosine, 4000, 4)
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		defer cancel()
		_, err := eng.SearchContext(ctx, Options{Algorithm: BruteForce, Threshold: 0.5})
		if err == nil {
			t.Skip("search finished inside the deadline")
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
		}
	})
}

// TestQueryContextCancellation: the query-serving entry points under
// pre-canceled and live contexts, for an LSH Bayes index and an
// AllPairs index (the two candidate sources).
func TestQueryContextCancellation(t *testing.T) {
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	live, cancelLive := context.WithCancel(context.Background())
	defer cancelLive()
	cases := []struct {
		name    string
		measure Measure
		opts    Options
	}{
		{"lsh-bayes", Cosine, Options{Algorithm: LSHBayesLSH, Threshold: 0.7}},
		{"ap-lite", Jaccard, Options{Algorithm: AllPairsBayesLSHLite, Threshold: 0.5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := cancelTestEngine(t, tc.measure, 400, 2)
			ix, err := eng.BuildIndex(tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			q := ix.Dataset().Vector(7)
			queries := []Vec{ix.Dataset().Vector(1), ix.Dataset().Vector(2), q}

			// Pre-canceled: every entry point refuses immediately.
			if _, err := ix.QueryContext(canceled, q, QueryOptions{}); true {
				requireCanceled(t, err)
			}
			if _, err := ix.TopKContext(canceled, q, 5); true {
				requireCanceled(t, err)
			}
			if _, err := ix.QueryBatchContext(canceled, queries, QueryOptions{}); true {
				requireCanceled(t, err)
			}

			// Live context: bit-identical to the non-ctx calls.
			want, err := ix.Query(q, QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := ix.QueryContext(live, q, QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			requireSameMatchList(t, got, want)
			wantK, err := ix.TopK(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			gotK, err := ix.TopKContext(live, q, 5)
			if err != nil {
				t.Fatal(err)
			}
			requireSameMatchList(t, gotK, wantK)
			wantB, err := ix.QueryBatch(queries, QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			gotB, err := ix.QueryBatchContext(live, queries, QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if len(wantB) != len(gotB) {
				t.Fatalf("batch sizes differ: %d vs %d", len(gotB), len(wantB))
			}
			for i := range wantB {
				requireSameMatchList(t, gotB[i], wantB[i])
			}
		})
	}
}

func requireSameMatchList(t *testing.T, got, want []Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d matches, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("match %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestRuntimeKnobNormalization pins the unified EngineConfig rule —
// zero selects the adaptive default, negative clamps to 1 — for fresh
// engines and for SetRuntime on a (shared-engine) index, which must
// normalize exactly the same way.
func TestRuntimeKnobNormalization(t *testing.T) {
	cfg := EngineConfig{Parallelism: -3, BatchSize: -7}.withDefaults()
	if cfg.Parallelism != 1 {
		t.Errorf("negative Parallelism normalized to %d, want 1", cfg.Parallelism)
	}
	if cfg.BatchSize != 1 {
		t.Errorf("negative BatchSize normalized to %d, want 1", cfg.BatchSize)
	}
	cfg = EngineConfig{}.withDefaults()
	if cfg.Parallelism != runtime.NumCPU() {
		t.Errorf("zero Parallelism normalized to %d, want NumCPU %d", cfg.Parallelism, runtime.NumCPU())
	}
	if cfg.BatchSize != 1024 {
		t.Errorf("zero BatchSize normalized to %d, want 1024", cfg.BatchSize)
	}

	eng := cancelTestEngine(t, Cosine, 100, 2)
	ix, err := eng.BuildIndex(Options{Algorithm: LSH, Threshold: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	ix.SetRuntime(-2, -9)
	if got := ix.engine().cfg; got.Parallelism != 1 || got.BatchSize != 1 {
		t.Errorf("SetRuntime(-2, -9) normalized to %+v, want Parallelism=1 BatchSize=1", got)
	}
	ix.SetRuntime(0, 0)
	if got := ix.engine().cfg; got.Parallelism != runtime.NumCPU() || got.BatchSize != 1024 {
		t.Errorf("SetRuntime(0, 0) normalized to %+v, want NumCPU/1024", got)
	}
	// The knobs must never change results: negative (clamped) versus
	// default settings answer identically.
	q := ix.Dataset().Vector(3)
	want, err := ix.Query(q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix.SetRuntime(-5, -5)
	got, err := ix.Query(q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	requireSameMatchList(t, got, want)
}
