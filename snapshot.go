package bayeslsh

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"bayeslsh/internal/allpairs"
	"bayeslsh/internal/lshindex"
	"bayeslsh/internal/planner"
	"bayeslsh/internal/snapshot"
	"bayeslsh/internal/stats"
	"bayeslsh/internal/vector"
)

// Index snapshots split the pipeline the way production serving does:
// build the index once, offline, where the hashing and table
// construction cost is paid; snapshot it; and let any number of
// serving processes load the snapshot and answer queries immediately,
// surviving restarts without a rebuild. A snapshot carries everything
// a query touches — the corpus, the resolved options, the lazily
// filled signature prefixes, the LSH band tables or AllPairs inverted
// index, and the fitted Jaccard prior — so a loaded Index serves
// Query/TopK/QueryBatch results bit-identical to the Index that wrote
// it, at any Parallelism and BatchSize (see docs/PERSISTENCE.md for
// the format and the guarantees).
//
// The format is versioned and checksummed: little-endian throughout,
// an 8-byte magic, a format version, tagged length-prefixed sections
// encoded by explicit per-type codecs (no reflection, no gob), and a
// trailing CRC-32C of the whole file.

// snapshotMagic begins every index snapshot.
const snapshotMagic = "BLSHSNAP"

// SnapshotVersion is the format version Index.WriteTo writes. Readers
// accept exactly the versions they know; the magic and version fields
// are fixed for all time, so any future version still reports a clean
// ErrSnapshotVersion from older builds.
const SnapshotVersion = 1

// LiveSnapshotVersion is the format version LiveIndex.WriteTo writes:
// the version-1 section sequence over the base segment, followed by
// one live section carrying the generation state (id map, tombstones,
// delta vectors). A version-2 file is not a valid version-1 file and
// vice versa — each loader names the other when handed the wrong one.
const LiveSnapshotVersion = 2

// Section tags of the version-1 layout, in file order. Version 2
// appends sectLive after them.
const (
	sectMeta uint32 = iota + 1
	sectVectors
	sectBitStore
	sectMinStore
	sectBitTables
	sectMinhashTables
	sectAllPairs
	sectLive
)

var (
	// ErrSnapshotFormat reports input that is not a readable index
	// snapshot: wrong magic, a malformed or truncated section, or
	// structurally inconsistent contents.
	ErrSnapshotFormat = errors.New("bayeslsh: not a readable index snapshot")
	// ErrSnapshotVersion reports a snapshot written by a format version
	// this build does not read.
	ErrSnapshotVersion = errors.New("bayeslsh: unsupported snapshot version")
	// ErrSnapshotChecksum reports a snapshot whose CRC-32C does not
	// match its contents — truncation or corruption in storage.
	ErrSnapshotChecksum = errors.New("bayeslsh: snapshot checksum mismatch")
)

// WriteTo serializes the index as a snapshot. It implements
// io.WriterTo. The writer is not buffered internally; wrap files in a
// bufio.Writer (SaveFile does). A disk-backed index (OpenIndexFile)
// returns ErrDiskBacked: its v3 file is already the snapshot.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	if ix.disk != nil {
		return 0, ErrDiskBacked
	}
	sw := snapshot.NewWriter(w)
	sw.Raw([]byte(snapshotMagic))
	sw.U32(SnapshotVersion)
	ix.writeSections(sw)
	return sw.Sum()
}

// writeSections writes the version-1 section sequence — the base-index
// half shared by Index.WriteTo (version 1) and LiveIndex.WriteTo
// (version 2, which appends a live section after these).
func (ix *Index) writeSections(sw *snapshot.Writer) {
	e := ix.engine()
	// The candidate fields are interface-typed since the disk-serving
	// views arrived; the v1 stream codecs write the heap structures.
	// WriteTo guards the disk-backed case with ErrDiskBacked, so these
	// assertions see heap structures (or nothing) here.
	bits, _ := ix.bits.(*lshindex.BitsTables)
	mins, _ := ix.mins.(*lshindex.MinhashTables)
	ap, _ := ix.ap.(*allpairs.Index)
	sw.Section(sectMeta, ix.writeMeta)
	sw.Section(sectVectors, e.ds.c.WriteSnapshot)
	sw.Section(sectBitStore, func(s *snapshot.Writer) {
		s.Bool(e.bitStore != nil)
		if e.bitStore != nil {
			e.bitStore.WriteSnapshot(s)
		}
	})
	sw.Section(sectMinStore, func(s *snapshot.Writer) {
		s.Bool(e.minStore != nil)
		if e.minStore != nil {
			e.minStore.WriteSnapshot(s)
		}
	})
	sw.Section(sectBitTables, func(s *snapshot.Writer) {
		s.Bool(bits != nil)
		if bits != nil {
			bits.WriteSnapshot(s)
		}
	})
	sw.Section(sectMinhashTables, func(s *snapshot.Writer) {
		s.Bool(mins != nil)
		if mins != nil {
			mins.WriteSnapshot(s)
		}
	})
	sw.Section(sectAllPairs, func(s *snapshot.Writer) {
		s.Bool(ap != nil)
		if ap != nil {
			ap.WriteSnapshot(s)
		}
	})
}

// writeMeta serializes the scalar state: measure, engine config (minus
// the runtime knobs Parallelism and BatchSize, which belong to the
// serving process), the resolved options, build statistics and the
// fitted prior.
func (ix *Index) writeMeta(w *snapshot.Writer) {
	e := ix.engine()
	w.U8(uint8(e.measure))
	cfg := e.cfg
	w.U64(cfg.Seed)
	w.U32(uint32(cfg.SignatureBits))
	w.U32(uint32(cfg.MinHashes))
	w.Bool(cfg.ExactProjections)
	o := ix.opts
	w.U8(uint8(o.Algorithm))
	w.F64(o.Threshold)
	w.F64(o.Epsilon)
	w.F64(o.Delta)
	w.F64(o.Gamma)
	w.U32(uint32(o.K))
	w.U32(uint32(o.LiteHashes))
	w.U32(uint32(o.MaxHashes))
	w.U32(uint32(o.PriorSample))
	w.Bool(o.OneBitMinhash)
	w.U32(uint32(o.BandK))
	w.Bool(o.MultiProbe)
	w.F64(o.FalseNegativeRate)
	w.U32(uint32(o.ApproxHashes))
	st := ix.stats
	w.U32(uint32(st.Tables))
	w.U32(uint32(st.BandK))
	w.U64(uint64(st.PriorCandidates))
	w.I64(int64(st.BuildTime))
	w.F64(ix.prior.Alpha)
	w.F64(ix.prior.Beta)
	// Corpus statistics, appended as a fixed-size 88-byte block (11
	// fields × 8 bytes) so readMeta can detect its presence by size
	// alone. The size matters: the v3 disk format writes two U32 fill
	// depths after this meta block inside the same section, so a
	// pre-stats v3 file leaves exactly 8 bytes after the prior and a
	// stats-bearing one exactly 96 — readMeta reads the block only when
	// ≥ 88 bytes remain, which disambiguates every (version, vintage)
	// combination. Any future meta field must keep the same discipline:
	// fixed size, appended after this block.
	cs := ix.cstats
	w.I64(int64(cs.Vectors))
	w.I64(int64(cs.Dim))
	w.I64(cs.Nnz)
	w.F64(cs.AvgLen)
	w.I64(int64(cs.MedianLen))
	w.I64(int64(cs.P90Len))
	w.I64(int64(cs.MaxLen))
	w.F64(cs.LenCV)
	w.F64(cs.Density)
	w.F64(cs.TopDFFrac)
	w.F64(cs.HeavyFrac)
}

// corpusStatsBytes is the encoded size of the writeMeta stats block.
const corpusStatsBytes = 11 * 8

// snapMeta is the decoded counterpart of writeMeta.
type snapMeta struct {
	measure Measure
	cfg     EngineConfig
	opts    Options
	stats   IndexStats
	prior   stats.Beta
	cstats  CorpusStats
}

// maxSnapshotHashes caps the deserialized signature budgets so a
// corrupt (but checksum-passing) snapshot cannot demand absurd
// allocations before decoding fails.
const maxSnapshotHashes = 1 << 24

func readMeta(r *snapshot.Reader) (snapMeta, error) {
	var m snapMeta
	m.measure = Measure(r.U8())
	m.cfg = EngineConfig{
		Seed:             r.U64(),
		SignatureBits:    int(r.U32()),
		MinHashes:        int(r.U32()),
		ExactProjections: r.Bool(),
	}
	m.opts = Options{
		Algorithm:         Algorithm(r.U8()),
		Threshold:         r.F64(),
		Epsilon:           r.F64(),
		Delta:             r.F64(),
		Gamma:             r.F64(),
		K:                 int(r.U32()),
		LiteHashes:        int(r.U32()),
		MaxHashes:         int(r.U32()),
		PriorSample:       int(r.U32()),
		OneBitMinhash:     r.Bool(),
		BandK:             int(r.U32()),
		MultiProbe:        r.Bool(),
		FalseNegativeRate: r.F64(),
		ApproxHashes:      int(r.U32()),
	}
	m.stats = IndexStats{
		Tables:          int(r.U32()),
		BandK:           int(r.U32()),
		PriorCandidates: int(r.U64()),
	}
	m.stats.BuildTime = time.Duration(r.I64())
	m.prior = stats.Beta{Alpha: r.F64(), Beta: r.F64()}
	// The corpus-stats block is optional (snapshots written before the
	// planner existed omit it) and detected by its fixed size — see
	// writeMeta for why size, not mere presence of bytes, is the test.
	if r.Err() == nil && r.Remaining() >= corpusStatsBytes {
		m.cstats = CorpusStats{
			Vectors:   int(r.I64()),
			Dim:       int(r.I64()),
			Nnz:       r.I64(),
			AvgLen:    r.F64(),
			MedianLen: int(r.I64()),
			P90Len:    int(r.I64()),
			MaxLen:    int(r.I64()),
			LenCV:     r.F64(),
			Density:   r.F64(),
			TopDFFrac: r.F64(),
			HeavyFrac: r.F64(),
		}
		if r.Err() == nil && (m.cstats.Vectors < 0 || m.cstats.Nnz < 0 || m.cstats.MaxLen < 0) {
			return m, snapshot.Failf(r, "negative corpus stats %+v", m.cstats)
		}
	}
	if err := r.Err(); err != nil {
		return m, err
	}
	switch m.measure {
	case Cosine, Jaccard, BinaryCosine:
	default:
		return m, snapshot.Failf(r, "unknown measure %d", int(m.measure))
	}
	switch m.opts.Algorithm {
	case BruteForce, AllPairs, AllPairsBayesLSH, AllPairsBayesLSHLite,
		LSH, LSHApprox, LSHBayesLSH, LSHBayesLSHLite:
	default:
		return m, snapshot.Failf(r, "algorithm %d has no query-serving index", int(m.opts.Algorithm))
	}
	if m.cfg.SignatureBits <= 0 || m.cfg.SignatureBits > maxSnapshotHashes ||
		m.cfg.MinHashes <= 0 || m.cfg.MinHashes > maxSnapshotHashes {
		return m, snapshot.Failf(r, "signature budgets %d/%d out of range",
			m.cfg.SignatureBits, m.cfg.MinHashes)
	}
	if _, err := m.opts.withDefaults(m.measure); err != nil {
		return m, snapshot.Failf(r, "options: %v", err)
	}
	if !m.prior.Valid() {
		return m, snapshot.Failf(r, "invalid prior %v", m.prior)
	}
	return m, nil
}

// ReadIndex loads an index snapshot written by WriteTo and returns a
// ready-to-serve Index. The runtime knobs EngineConfig.Parallelism and
// BatchSize are not part of a snapshot; the loaded index uses their
// defaults (all CPUs, default batch). Results served by the loaded
// index are bit-identical to the index that wrote the snapshot.
//
// Errors distinguish the failure: ErrSnapshotFormat for input that is
// not a snapshot or is structurally broken, ErrSnapshotVersion for an
// unknown format version, ErrSnapshotChecksum for corruption.
func ReadIndex(r io.Reader) (*Index, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("bayeslsh: reading snapshot: %w", err)
	}
	return readIndexBytes(buf)
}

// readIndexBytes decodes a whole snapshot held in memory — the shared
// back end of ReadIndex and LoadFile (which reads the file in one
// stat-sized allocation instead of growing through io.ReadAll).
func readIndexBytes(buf []byte) (*Index, error) {
	// Fixed prologue first: magic, then version, so mismatches report
	// cleanly regardless of what follows.
	if len(buf) < len(snapshotMagic)+4 || string(buf[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("%w: missing magic", ErrSnapshotFormat)
	}
	switch v := binary.LittleEndian.Uint32(buf[len(snapshotMagic):]); v {
	case SnapshotVersion:
	case LiveSnapshotVersion:
		return nil, fmt.Errorf("%w: found version %d (a live-index snapshot); load it with ReadLiveIndex or LoadLiveFile",
			ErrSnapshotVersion, v)
	case DiskSnapshotVersion:
		return nil, fmt.Errorf("%w: found version %d (a disk-servable snapshot); open it with OpenIndexFile",
			ErrSnapshotVersion, v)
	default:
		return nil, fmt.Errorf("%w: found version %d; this build reads versions %d (ReadIndex/LoadFile), %d (ReadLiveIndex/LoadLiveFile) and %d (OpenIndexFile)",
			ErrSnapshotVersion, v, SnapshotVersion, LiveSnapshotVersion, DiskSnapshotVersion)
	}
	sr, err := checksummedBody(buf)
	if err != nil {
		return nil, err
	}
	ix, err := decodeIndex(sr)
	if err == nil && sr.Remaining() != 0 {
		err = fmt.Errorf("%d trailing bytes after sections", sr.Remaining())
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotFormat, err)
	}
	return ix, nil
}

// checksummedBody verifies the trailing CRC-32C and returns a reader
// positioned after the magic and version prologue.
func checksummedBody(buf []byte) (*snapshot.Reader, error) {
	if len(buf) < len(snapshotMagic)+8 {
		return nil, fmt.Errorf("%w: truncated before checksum", ErrSnapshotFormat)
	}
	body, tail := buf[:len(buf)-4], buf[len(buf)-4:]
	if snapshot.Checksum(body) != binary.LittleEndian.Uint32(tail) {
		return nil, ErrSnapshotChecksum
	}
	return snapshot.NewReader(body[len(snapshotMagic)+4:]), nil
}

// decodeIndex decodes the version-1 section sequence and rebuilds the
// serving wiring the way Engine.BuildIndex wires a fresh build — same
// store accessors, same verifier constructor (with the persisted prior
// in place of refitting), same depth bookkeeping — so the two paths
// cannot drift apart. It leaves any bytes after the known sections
// unread (the live section of a version-2 snapshot); callers check
// Remaining.
func decodeIndex(sr *snapshot.Reader) (*Index, error) {
	mr := sr.Section(sectMeta)
	meta, err := readMeta(mr)
	if err != nil {
		return nil, err
	}
	if err := mr.Close(); err != nil {
		return nil, err
	}

	vr := sr.Section(sectVectors)
	coll, err := vector.ReadCollectionSnapshot(vr)
	if err != nil {
		return nil, err
	}
	if err := vr.Close(); err != nil {
		return nil, err
	}

	eng, err := NewEngine(&Dataset{c: coll}, meta.measure, meta.cfg)
	if err != nil {
		return nil, err
	}
	ix := &Index{opts: meta.opts, stats: meta.stats, prior: meta.prior, cstats: meta.cstats}
	ix.plan = Plan{Pipeline: planner.Pipeline(meta.opts.Algorithm)}
	if ix.cstats.Zero() {
		// A snapshot written before stats persistence: the corpus is
		// already resident, so collecting now is the same O(nnz) pass a
		// fresh build pays, and keeps old goldens fully featured.
		ix.cstats = eng.corpusPlanner().Stats()
	}
	ix.eng.Store(eng)

	br := sr.Section(sectBitStore)
	if br.Bool() {
		if err := eng.bitSigStore().ReadSnapshot(br); err != nil {
			return nil, err
		}
	}
	if err := br.Close(); err != nil {
		return nil, err
	}
	nr := sr.Section(sectMinStore)
	if nr.Bool() {
		if err := eng.minSigStore().ReadSnapshot(nr); err != nil {
			return nil, err
		}
	}
	if err := nr.Close(); err != nil {
		return nil, err
	}

	tr := sr.Section(sectBitTables)
	if tr.Bool() {
		if ix.bits, err = lshindex.ReadBitsTablesSnapshot(tr, len(coll.Vecs)); err != nil {
			return nil, err
		}
	}
	if err := tr.Close(); err != nil {
		return nil, err
	}
	hr := sr.Section(sectMinhashTables)
	if hr.Bool() {
		if ix.mins, err = lshindex.ReadMinhashTablesSnapshot(hr, len(coll.Vecs)); err != nil {
			return nil, err
		}
	}
	if err := hr.Close(); err != nil {
		return nil, err
	}
	ar := sr.Section(sectAllPairs)
	if ar.Bool() {
		ix.ap, err = allpairs.ReadIndexSnapshot(ar, eng.workInput(),
			toExactMeasure(meta.measure), meta.opts.Threshold)
		if err != nil {
			return nil, err
		}
	}
	if err := ar.Close(); err != nil {
		return nil, err
	}
	if err := sr.Err(); err != nil {
		return nil, err
	}

	if err := ix.rewire(); err != nil {
		return nil, err
	}
	return ix, nil
}

// rewire rebuilds the derived serving state of a decoded index:
// validates that the candidate structure the algorithm probes was
// present, recomputes the banding depths from the decoded tables, and
// reconstructs the verifier from the restored stores and persisted
// prior — mirroring the wiring half of Engine.BuildIndex.
func (ix *Index) rewire() error {
	e, o := ix.engine(), ix.opts
	switch o.Algorithm {
	case BruteForce:
	case AllPairs, AllPairsBayesLSH, AllPairsBayesLSHLite:
		if ix.ap == nil {
			return fmt.Errorf("algorithm %v without its AllPairs index section", o.Algorithm)
		}
	default: // the LSH pipelines
		// The decoded banding depth must fit the signature budget the
		// engine re-derives from the config — otherwise the first query
		// would ask the hash family for more hashes than it has.
		if e.measure == Jaccard {
			if ix.mins == nil {
				return fmt.Errorf("algorithm %v without its minhash table section", o.Algorithm)
			}
			ix.bandMin = ix.mins.BandK() * ix.mins.Bands()
			if max := e.minSigStore().MaxHashes(); ix.bandMin > max {
				return fmt.Errorf("band tables need %d minhashes, signature budget is %d", ix.bandMin, max)
			}
		} else {
			if ix.bits == nil {
				return fmt.Errorf("algorithm %v without its band table section", o.Algorithm)
			}
			ix.bandBits = ix.bits.BandK() * ix.bits.Bands()
			if max := e.bitSigStore().MaxBits(); ix.bandBits > max {
				return fmt.Errorf("band tables need %d bits, signature budget is %d", ix.bandBits, max)
			}
		}
	}

	var err error
	switch o.Algorithm {
	case AllPairsBayesLSH, AllPairsBayesLSHLite, LSHBayesLSH, LSHBayesLSHLite:
		ix.vq, err = e.bayesVerifierWithPrior(context.Background(), o, ix.prior)
		if err != nil {
			return err
		}
		if e.measure == Jaccard {
			ix.verifyMin = ix.vq.Params().MaxHashes
			ix.packOneBit = o.OneBitMinhash
		} else {
			ix.verifyBits = ix.vq.Params().MaxHashes
		}
	case LSHApprox:
		n := o.ApproxHashes
		if e.measure == Jaccard {
			if max := e.minSigStore().MaxHashes(); n > max {
				n = max
			}
			e.minSigStore().EnsureAllParallel(n, e.workers())
			ix.verifyMin = n
		} else {
			if max := e.bitSigStore().MaxBits(); n > max {
				n = max
			}
			e.bitSigStore().EnsureAllParallel(n, e.workers())
			ix.verifyBits = n
		}
		ix.approxN = n
	}
	return nil
}

// SetRuntime sets the runtime knobs a snapshot deliberately omits —
// EngineConfig.Parallelism and BatchSize, normalized under the same
// rule as engine construction (0 selects the adaptive default,
// negative clamps to 1; see docs/TUNING.md). They shard QueryBatch and
// any lazy signature fills; results are bit-identical at every
// setting.
//
// SetRuntime is safe against concurrent queries: the new knobs are
// published as an atomically-swapped engine view, queries load the
// view per engine access, and every view shares the same dataset and
// signature stores — so a query overlapping the call runs each of its
// phases under one of the two settings, both of which produce the
// identical result set.
//
// The knobs apply to this index only: an index built from a live
// Engine detaches onto its own engine view first, so the engine the
// caller still holds — and any sibling Index sharing it — keeps its
// configured Parallelism and BatchSize. The detached view shares the
// dataset and signature stores, so no hashing is repaid.
func (ix *Index) SetRuntime(parallelism, batchSize int) {
	own := *ix.engine() // shallow copy: shares dataset, work view and stores
	own.cfg.Parallelism = parallelism
	own.cfg.BatchSize = batchSize
	own.cfg = own.cfg.withDefaults()
	ix.eng.Store(&own)
}

// SaveFile writes the index snapshot to path atomically: the bytes go
// to a temporary file in the same directory, which replaces path only
// after a successful write — a serving fleet never observes a
// half-written snapshot. The snapshot keeps the permissions of the
// file it replaces (0644 for a fresh one), not the 0600 of the
// temporary file, so builder and serving processes can run as
// different users.
func (ix *Index) SaveFile(path string) error {
	return saveAtomic(path, ix)
}

// saveAtomic is the shared write-to-temp-then-rename implementation
// behind Index.SaveFile and LiveIndex.SaveFile.
func saveAtomic(path string, wt io.WriterTo) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".snap-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	mode := os.FileMode(0o644)
	if fi, err := os.Stat(path); err == nil {
		mode = fi.Mode().Perm()
	}
	werr := f.Chmod(mode)
	bw := bufio.NewWriterSize(f, 1<<20)
	if werr == nil {
		_, werr = wt.WriteTo(bw)
	}
	if werr == nil {
		werr = bw.Flush()
	}
	if werr == nil {
		// Data must be durable before the rename publishes it —
		// otherwise a crash can leave the rename on disk ahead of the
		// bytes, replacing a good snapshot with a truncated one.
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Best-effort directory sync makes the rename itself durable.
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// LoadFile loads an index snapshot from a file written by SaveFile.
func LoadFile(path string) (*Index, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return readIndexBytes(buf)
}

// WriteTo serializes the live index as a version-2 snapshot: the base
// segment exactly as Index.WriteTo writes it, then one live section —
// the external-id map, the tombstone set, and the delta segment's raw
// vectors (delta signatures are recomputed on load from the persisted
// seed, bit-identically, rather than stored). WriteTo takes a
// consistent cut of the generation state and then encodes without
// blocking queries or mutations. It implements io.WriterTo.
func (li *LiveIndex) WriteTo(w io.Writer) (int64, error) {
	li.mu.Lock()
	gen := li.gen.Load()
	view := gen.mem.View(gen.memN)
	tombIDs := li.tombs.IDs(gen.nextID())
	li.mu.Unlock()
	if gen.base.disk != nil {
		// A disk-backed base has no heap structures to re-encode and its
		// v3 file is already durable. After the first merge the base is
		// an ordinary heap index and saving works again.
		return 0, fmt.Errorf("%w (the base still serves from its v3 file; Compact with pending changes first)", ErrDiskBacked)
	}

	sw := snapshot.NewWriter(w)
	sw.Raw([]byte(snapshotMagic))
	sw.U32(LiveSnapshotVersion)
	gen.base.writeSections(sw)
	sw.Section(sectLive, func(s *snapshot.Writer) {
		s.U64(uint64(gen.start))
		s.U64(uint64(gen.memN))
		ids := make([]uint64, len(gen.baseIDs))
		for i, ext := range gen.baseIDs {
			ids[i] = uint64(ext)
		}
		s.U64s(ids)
		ts := make([]uint64, len(tombIDs))
		for i, id := range tombIDs {
			ts[i] = uint64(id)
		}
		s.U64s(ts)
		mc := vector.Collection{Dim: li.dim, Vecs: view.Raw}
		mc.WriteSnapshot(s)
	})
	return sw.Sum()
}

// SaveFile writes the live snapshot to path atomically, under the
// Index.SaveFile contract. Combined with the consistent cut WriteTo
// takes, periodic SaveFile calls from a serving process give
// crash-consistent durability: a loader always sees some complete
// generation.
func (li *LiveIndex) SaveFile(path string) error {
	return saveAtomic(path, li)
}

// ReadLiveIndex loads a live-index snapshot written by
// LiveIndex.WriteTo and returns a ready-to-serve LiveIndex under the
// given merge policy (which, like the runtime knobs, is serving-
// process configuration and not part of a snapshot). The loaded index
// serves queries bit-identical to the one that wrote the snapshot and
// accepts Add/Delete continuing the saved id sequence.
//
// Errors follow ReadIndex: ErrSnapshotFormat, ErrSnapshotVersion
// (naming ReadIndex when handed a base-index snapshot), or
// ErrSnapshotChecksum.
func ReadLiveIndex(r io.Reader, lc LiveConfig) (*LiveIndex, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("bayeslsh: reading snapshot: %w", err)
	}
	return readLiveBytes(buf, lc)
}

// LoadLiveFile loads a live-index snapshot from a file written by
// LiveIndex.SaveFile.
func LoadLiveFile(path string, lc LiveConfig) (*LiveIndex, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return readLiveBytes(buf, lc)
}

// readLiveBytes decodes a version-2 snapshot: the shared base-index
// decode, then the live section, replayed through the same ingest
// code path Add uses so the loaded delta segment is bit-identical to
// the saved one.
func readLiveBytes(buf []byte, lc LiveConfig) (*LiveIndex, error) {
	if len(buf) < len(snapshotMagic)+4 || string(buf[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("%w: missing magic", ErrSnapshotFormat)
	}
	switch v := binary.LittleEndian.Uint32(buf[len(snapshotMagic):]); v {
	case LiveSnapshotVersion:
	case SnapshotVersion:
		return nil, fmt.Errorf("%w: found version %d (a base-index snapshot); load it with ReadIndex or LoadFile (then LiveFrom)",
			ErrSnapshotVersion, v)
	case DiskSnapshotVersion:
		return nil, fmt.Errorf("%w: found version %d (a disk-servable snapshot); open it with OpenIndexFile (then LiveFrom), or OpenLiveFile",
			ErrSnapshotVersion, v)
	default:
		return nil, fmt.Errorf("%w: found version %d; this build reads versions %d (ReadIndex/LoadFile), %d (ReadLiveIndex/LoadLiveFile) and %d (OpenIndexFile)",
			ErrSnapshotVersion, v, SnapshotVersion, LiveSnapshotVersion, DiskSnapshotVersion)
	}
	sr, err := checksummedBody(buf)
	if err != nil {
		return nil, err
	}
	li, err := decodeLive(sr, lc)
	if err == nil && sr.Remaining() != 0 {
		err = fmt.Errorf("%d trailing bytes after sections", sr.Remaining())
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotFormat, err)
	}
	return li, nil
}

// decodeLive decodes the base sections then the live section,
// validating the generation state against the decoded base before
// rebuilding the serving wiring.
func decodeLive(sr *snapshot.Reader, lc LiveConfig) (*LiveIndex, error) {
	ix, err := decodeIndex(sr)
	if err != nil {
		return nil, err
	}
	lr := sr.Section(sectLive)
	start := int(lr.U64())
	memN := int(lr.U64())
	// maxLiveIDs caps the external-id space a snapshot may declare:
	// the tombstone bitset and the id map scale with it, so a corrupt
	// (but checksum-passing) file must not be able to demand absurd
	// allocations. 2^27 ids matches vector.MaxSnapshotDim's scale and
	// is far beyond what the in-memory index serves.
	const maxLiveIDs = 1 << 27
	if lr.Err() == nil && (start < 0 || memN < 0 || start+memN > maxLiveIDs) {
		return nil, snapshot.Failf(lr, "live section id space start=%d memN=%d out of range", start, memN)
	}
	rawBase := lr.U64s() // length validated against remaining bytes
	if lr.Err() == nil && len(rawBase) != ix.Len() {
		return nil, snapshot.Failf(lr, "live id map covers %d vectors, base has %d", len(rawBase), ix.Len())
	}
	baseIDs := make([]int, 0, len(rawBase))
	prev := -1
	for i, v := range rawBase {
		ext := int(v)
		if v > maxLiveIDs || ext <= prev || ext >= start {
			return nil, snapshot.Failf(lr, "live id map not increasing below %d at entry %d", start, i)
		}
		baseIDs = append(baseIDs, ext)
		prev = ext
	}
	rawTombs := lr.U64s()
	tombIDs := make([]int, 0, len(rawTombs))
	prev = -1
	for i, v := range rawTombs {
		id := int(v)
		if v > maxLiveIDs || id <= prev || id >= start+memN {
			return nil, snapshot.Failf(lr, "tombstone ids not increasing below %d at entry %d", start+memN, i)
		}
		tombIDs = append(tombIDs, id)
		prev = id
	}
	mc, err := vector.ReadCollectionSnapshot(lr)
	if err != nil {
		return nil, err
	}
	if err := lr.Close(); err != nil {
		return nil, err
	}
	if err := sr.Err(); err != nil {
		return nil, err
	}
	if mc.Dim != ix.engine().ds.c.Dim {
		return nil, fmt.Errorf("delta dimensionality %d, base is %d", mc.Dim, ix.engine().ds.c.Dim)
	}
	if len(mc.Vecs) != memN {
		return nil, fmt.Errorf("live section declares %d delta vectors, carries %d", memN, len(mc.Vecs))
	}

	li := newLiveOver(ix, lc, baseIDs, start)
	gen := li.gen.Load()
	for _, v := range mc.Vecs {
		// Replaying through the ingest path recomputes the delta
		// signatures from the persisted seed — bit-identical to the
		// saved ones, at the cost of re-hashing only the (policy-
		// bounded) delta.
		gen.mem.Append(li.prepareEntry(ix, Vec{v: v}))
	}
	present := make(map[int]bool, len(baseIDs))
	for _, ext := range baseIDs {
		present[ext] = true
	}
	ng := *gen
	ng.memN = memN
	li.gen.Store(&ng)
	li.liveCount = len(baseIDs) + memN
	for _, id := range tombIDs {
		li.tombs.Set(id)
		if present[id] || id >= start {
			li.dead++
			li.liveCount--
			if gen.dead != nil {
				// Prior-bearing pipelines read the generation-pinned
				// mask; rebuild it from the present tombstones.
				gen.dead[id] = struct{}{}
			}
		}
	}
	return li, nil
}
