package bayeslsh

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"bayeslsh/internal/core"
	"bayeslsh/internal/minhash"
	"bayeslsh/internal/pair"
	"bayeslsh/internal/shard"
	"bayeslsh/internal/sighash"
	"bayeslsh/internal/vector"
)

// ErrBadK reports TopK called with k <= 0.
var ErrBadK = errors.New("bayeslsh: TopK needs k > 0")

// ErrBadThreshold reports a per-query threshold override outside
// [built threshold, 1] — the index generates candidates at the built
// threshold, so it cannot serve a lower one.
var ErrBadThreshold = errors.New("bayeslsh: query threshold outside [built threshold, 1]")

// Vec is a single query vector, the input of Index.Query and
// Index.TopK. Build one with NewVec or NewSetVec, or take one out of a
// dataset with Dataset.Vector. A Vec is immutable and safe to share.
type Vec struct {
	v vector.Vector
}

// NewVec builds a query vector from a feature→weight map, the same
// input format as Dataset.Add. Zero weights are dropped.
func NewVec(features map[uint32]float64) Vec {
	return Vec{v: vector.FromMap(features)}
}

// NewSetVec builds a binary query vector from a set of feature
// indices, the same input format as Dataset.AddSet.
func NewSetVec(indices []uint32) Vec {
	m := make(map[uint32]float64, len(indices))
	for _, i := range indices {
		m[i] = 1
	}
	return NewVec(m)
}

// Len returns the number of non-zero features.
func (q Vec) Len() int { return q.v.Len() }

// Features returns the vector's non-zero features and their weights,
// in strictly ascending feature order — the inverse of NewVec. The
// returned slices are copies; mutating them does not affect the Vec.
// NewVec over the returned pairs reconstructs the Vec bit-identically,
// which is what lets a query cross a process boundary (the HTTP
// client renders Features in the wire grammar) without changing any
// result.
func (q Vec) Features() ([]uint32, []float64) {
	ind := make([]uint32, q.v.Len())
	val := make([]float64, q.v.Len())
	copy(ind, q.v.Ind)
	copy(val, q.v.Val)
	return ind, val
}

// Vector returns vector i as a query vector. Querying an index with
// its own dataset's vector i returns i itself (similarity 1) plus the
// partners the batch search pairs i with.
func (d *Dataset) Vector(i int) Vec { return Vec{v: d.c.Vecs[i]} }

// Match is one query result: the dataset id of a similar corpus
// vector and the reported similarity (exact or estimated, depending
// on the index's algorithm — the same semantics as the batch
// pipeline's Result.Sim).
type Match struct {
	ID  int
	Sim float64
}

// QueryOptions configures one query against a built index.
type QueryOptions struct {
	// Threshold overrides the index's built threshold for this query.
	// It must be at least the built threshold: candidate generation
	// was provisioned at build time, so lower thresholds would
	// silently lose recall. Raising it filters the result stream; for
	// the estimate-reporting pipelines the filter applies to the
	// estimates (inference still runs at the built threshold). 0
	// selects the built threshold.
	Threshold float64
}

// querySigs carries one query's preprocessed forms: the raw vector
// (exact similarity), the measure-transformed vector (AllPairs
// probing), and whichever hash signatures the index compares.
type querySigs struct {
	raw  vector.Vector
	work vector.Vector
	bits []uint64
	min  []uint32
}

// prepare transforms and hashes the query the way the corpus was
// transformed and hashed at build: for Cosine the query is normalized
// (idempotent if already unit-norm), for the binary measures it is
// binarized and normalized; signatures derive from the engine's
// seeded families, so a query equal to corpus vector i hashes to
// exactly i's stored signature prefix. Only the depth the call reads
// is hashed: banding depth always, verification depth unless the
// caller (TopK) verifies with exact similarities only.
func (ix *Index) prepare(q Vec, topK bool) querySigs {
	e := ix.engine()
	qs := querySigs{raw: q.v}
	if e.measure == Cosine {
		qs.work = q.v.Clone().Normalize()
	} else {
		qs.work = q.v.Binarize().Normalize()
	}
	minDepth, bitsDepth := ix.bandMin, ix.bandBits
	if !topK {
		minDepth = max(minDepth, ix.verifyMin)
		bitsDepth = max(bitsDepth, ix.verifyBits)
	}
	if minDepth > 0 {
		qs.min = e.minSigStore().Family().SignatureN(qs.work, minDepth)
	}
	if ix.packOneBit && !topK {
		qs.bits = minhash.PackOneBit(qs.min)
	} else if bitsDepth > 0 {
		fam := e.bitSigStore().Family()
		// Features outside the corpus dimensionality contribute nothing
		// to any dot product with a corpus vector, so the hyperplane
		// family hashes the query's projection onto the corpus feature
		// space; exact verification still uses the full vector.
		qs.bits = fam.SignatureN(restrictToDim(qs.work, fam.Dim()), bitsDepth)
	}
	return qs
}

// restrictToDim returns v limited to features below dim, sharing the
// input's backing arrays. Vectors carry strictly increasing indices,
// so the restriction is a prefix.
func restrictToDim(v vector.Vector, dim int) vector.Vector {
	if v.Len() == 0 || int(v.Ind[v.Len()-1]) < dim {
		return v
	}
	k := sort.Search(v.Len(), func(i int) bool { return int(v.Ind[i]) >= dim })
	return vector.Vector{Ind: v.Ind[:k], Val: v.Val[:k]}
}

// candidates generates the query's candidate corpus ids from the
// prebuilt structure, in ascending id order.
func (ix *Index) candidates(qs querySigs) []int32 {
	switch {
	case ix.ap != nil:
		return ix.ap.Probe(qs.work)
	case ix.mins != nil:
		return ix.mins.Probe(qs.min)
	case ix.bits != nil:
		return ix.bits.Probe(qs.bits)
	default: // BruteForce: every non-empty corpus vector
		vecs := ix.engine().ds.c.Vecs
		ids := make([]int32, 0, len(vecs))
		for id, v := range vecs {
			if v.Len() > 0 {
				ids = append(ids, int32(id))
			}
		}
		return ids
	}
}

// exactSim computes the exact similarity of the raw query to corpus
// vector id under the index's measure.
func (ix *Index) exactSim(qraw vector.Vector, id int32) float64 {
	e := ix.engine()
	return toExactMeasure(e.measure).Sim(qraw, e.ds.c.Vecs[id])
}

// Query returns the corpus vectors similar to q at the index's
// threshold (or opts.Threshold, if higher), in ascending id order. It
// runs candidate generation against the prebuilt index followed by
// the built algorithm's verification — exact, fixed-hash estimation,
// BayesLSH, or BayesLSH-Lite. Safe for any number of concurrent
// callers; results are deterministic for the engine's Seed. Query is
// QueryContext with context.Background() — it cannot be canceled.
func (ix *Index) Query(q Vec, opts QueryOptions) ([]Match, error) {
	return ix.QueryContext(context.Background(), q, opts)
}

// QueryContext is Query with cooperative cancellation: verification
// polls ctx between candidates (and, for the Bayes algorithms,
// between hash rounds), so even a query with a pathologically large
// candidate set aborts promptly. A canceled query returns an error
// wrapping context.Canceled or context.DeadlineExceeded and no
// matches. For a ctx that is never canceled the result is
// bit-identical to Query's.
func (ix *Index) QueryContext(ctx context.Context, q Vec, opts QueryOptions) ([]Match, error) {
	t, err := ix.queryThreshold(opts)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, ctxWrap(err)
	}
	var stop *shard.Stopper
	if ctx.Done() != nil {
		stop = shard.NewStopper(ctx)
		defer stop.Close()
	}
	return ix.queryStop(q, t, stop)
}

// queryStop runs one threshold query at the resolved threshold t.
// stop is nil for "not cancelable", or a watcher owned by the caller
// (QueryContext per query, QueryBatchContext shared across a batch).
func (ix *Index) queryStop(q Vec, t float64, stop *shard.Stopper) ([]Match, error) {
	if q.Len() == 0 {
		return nil, nil
	}
	// First touch of a disk-backed index verifies the sections this
	// query shape reads (checksum + deep structural walk, once per
	// section for the life of the mapping).
	if err := ix.ready(false); err != nil {
		return nil, err
	}
	qs := ix.prepare(q, false)
	hits, err := ix.verify(qs, ix.candidates(qs), stop)
	if err != nil {
		return nil, ctxWrap(err)
	}
	if t > ix.opts.Threshold {
		kept := hits[:0]
		for _, h := range hits {
			if h.Sim >= t {
				kept = append(kept, h)
			}
		}
		hits = kept
	}
	return toMatches(hits), nil
}

// queryThreshold resolves and validates the per-query threshold.
func (ix *Index) queryThreshold(opts QueryOptions) (float64, error) {
	t := opts.Threshold
	if t == 0 {
		return ix.opts.Threshold, nil
	}
	if t < ix.opts.Threshold || t > 1 {
		return 0, fmt.Errorf("%w: %v outside [%v, 1]", ErrBadThreshold, t, ix.opts.Threshold)
	}
	return t, nil
}

// segView is the verification surface of one index segment: the Bayes
// verifier over that segment's signatures (nil for the pipelines that
// verify without one), the exact similarity of the current query to
// segment id, and the fixed-hash estimate (LSHApprox only). The base
// corpus and a LiveIndex's delta segment both present one, so the two
// run the built algorithm's verification through the same switch and
// per-candidate decisions cannot drift between segments.
type segView struct {
	vq  core.QueryVerifier
	sim func(id int32) float64
	est func(id int32) float64
}

// segment wraps the index's own corpus in a segView for the prepared
// query qs.
func (ix *Index) segment(qs querySigs) segView {
	return segView{
		vq:  ix.vq,
		sim: func(id int32) float64 { return ix.exactSim(qs.raw, id) },
		est: func(id int32) float64 { return ix.approxEstimate(qs, id, ix.approxN) },
	}
}

// verify runs the built algorithm's verification over the candidate
// ids at the built threshold, returning hits in candidate (ascending
// id) order. stop (nil for "not cancelable") is polled between
// candidates; a stopped verification returns the context's error and
// no hits.
func (ix *Index) verify(qs querySigs, ids []int32, stop *shard.Stopper) ([]pair.Hit, error) {
	return ix.verifySeg(ix.segment(qs), qs, ids, stop)
}

// verifySeg is verify over an explicit segment view.
func (ix *Index) verifySeg(sv segView, qs querySigs, ids []int32, stop *shard.Stopper) ([]pair.Hit, error) {
	o := ix.opts
	switch o.Algorithm {
	case BruteForce, AllPairs, LSH:
		var hits []pair.Hit
		for _, id := range ids {
			if stop.Stopped() {
				return nil, stop.Err()
			}
			if s := sv.sim(id); s >= o.Threshold {
				hits = append(hits, pair.Hit{ID: id, Sim: s})
			}
		}
		return hits, nil

	case LSHApprox:
		var hits []pair.Hit
		for _, id := range ids {
			if stop.Stopped() {
				return nil, stop.Err()
			}
			s := sv.est(id)
			if s >= o.Threshold {
				hits = append(hits, pair.Hit{ID: id, Sim: s})
			}
		}
		return hits, nil

	case AllPairsBayesLSH, LSHBayesLSH:
		hits, _, err := sv.vq.VerifyQueryStop(core.QuerySig{Bits: qs.bits, Min: qs.min}, ids, stop)
		if err != nil {
			return nil, err
		}
		if o.Algorithm == AllPairsBayesLSH {
			// The AllPairs probe and the batch scan evaluate the cheap
			// candidate bound from different sides, so their candidate
			// sets can differ on (and only on) sub-threshold pairs.
			// Exact-verifying the accepted hits removes those from both
			// paths — the query-side twin of Engine.dropSubThreshold —
			// so query results equal batch results strictly. Survivors
			// keep their estimated similarity.
			kept := hits[:0]
			for _, h := range hits {
				if stop.Stopped() {
					return nil, stop.Err()
				}
				if sv.sim(h.ID) >= o.Threshold {
					kept = append(kept, h)
				}
			}
			hits = kept
		}
		return hits, nil

	default: // AllPairsBayesLSHLite, LSHBayesLSHLite
		hits, _, err := sv.vq.VerifyQueryLiteStop(core.QuerySig{Bits: qs.bits, Min: qs.min}, ids, o.LiteHashes,
			sv.sim, stop)
		if err != nil {
			return nil, err
		}
		return hits, nil
	}
}

// approxEstimate is the classical fixed-n LSH estimator of §3 for one
// query-candidate pair, sharing the batch approxVerify formulas.
func (ix *Index) approxEstimate(qs querySigs, id int32, n int) float64 {
	e := ix.engine()
	if e.measure == Jaccard {
		return approxJaccardEstimate(minhash.Matches(qs.min, e.minSigStore().Sigs()[id], 0, n), n)
	}
	return approxCosineEstimate(sighash.MatchCount(qs.bits, e.bitSigStore().Sigs()[id], 0, n), n)
}

// TopK returns the k corpus vectors most similar to q, among those
// meeting the index's built threshold, ordered by decreasing exact
// similarity (ties by ascending id). Fewer than k matches are
// returned when fewer qualify — k larger than the corpus is simply a
// "return everything qualifying" query, never an error. Candidate
// generation runs at the built threshold, so TopK cannot see below
// it; sub-threshold candidates that generation happens to surface are
// clamped away rather than reported, which makes the result
// well-defined — a function of the corpus, the threshold and the
// banding plan — instead of leaking whichever extra collisions the
// built candidate source produced (build with Algorithm BruteForce
// and a low threshold for a corpus-wide k-nearest scan). Similarities
// are always exact; the build algorithm only determines the candidate
// source.
func (ix *Index) TopK(q Vec, k int) ([]Match, error) {
	return ix.TopKContext(context.Background(), q, k)
}

// TopKContext is TopK with cooperative cancellation, under the
// QueryContext contract.
func (ix *Index) TopKContext(ctx context.Context, q Vec, k int) ([]Match, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w (got %d)", ErrBadK, k)
	}
	if err := ctx.Err(); err != nil {
		return nil, ctxWrap(err)
	}
	if q.Len() == 0 {
		return nil, nil
	}
	if err := ix.ready(true); err != nil {
		return nil, err
	}
	var stop *shard.Stopper
	if ctx.Done() != nil {
		stop = shard.NewStopper(ctx)
		defer stop.Close()
	}
	qs := ix.prepare(q, true)
	ids := ix.candidates(qs)
	hits := make([]pair.Hit, 0, len(ids))
	for _, id := range ids {
		if stop.Stopped() {
			return nil, ctxWrap(stop.Err())
		}
		if s := ix.exactSim(qs.raw, id); s >= ix.opts.Threshold {
			hits = append(hits, pair.Hit{ID: id, Sim: s})
		}
	}
	pair.SortHitsBySim(hits)
	if len(hits) > k {
		hits = hits[:k]
	}
	return toMatches(hits), nil
}

// QueryBatch answers many queries, sharding them over the engine's
// worker pool (EngineConfig.Parallelism). Result i corresponds to
// queries[i]; each is identical to a standalone Query call, so the
// output is independent of worker count and batching. QueryBatch is
// QueryBatchContext with context.Background() — it cannot be
// canceled.
func (ix *Index) QueryBatch(queries []Vec, opts QueryOptions) ([][]Match, error) {
	return ix.QueryBatchContext(context.Background(), queries, opts)
}

// QueryBatchContext is QueryBatch with cooperative cancellation: one
// watcher is shared by the whole batch, queries stop being dispatched
// once ctx is done, and the query in flight on each worker aborts
// between candidates. A canceled batch returns an error wrapping
// context.Canceled or context.DeadlineExceeded and no results — a
// batch is one request, so partial delivery would be
// indistinguishable from empty result sets.
func (ix *Index) QueryBatchContext(ctx context.Context, queries []Vec, opts QueryOptions) ([][]Match, error) {
	t, err := ix.queryThreshold(opts)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, ctxWrap(err)
	}
	// Surface a disk-backed index's first-touch verification failure as
	// the batch's error; inside the fan-out it would be swallowed.
	if err := ix.ready(false); err != nil {
		return nil, err
	}
	var stop *shard.Stopper
	if ctx.Done() != nil {
		stop = shard.NewStopper(ctx)
		defer stop.Close()
	}
	out := make([][]Match, len(queries))
	workers := ix.engine().workers()
	err = shard.RunCtx(ctx, len(queries), workers, shard.Chunk(len(queries), workers, 1), func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			if stop.Stopped() {
				return
			}
			// Per-query errors cannot occur here: the threshold was
			// validated above, readiness was checked above, and
			// cancellation surfaces via RunCtx.
			out[i], _ = ix.queryStop(queries[i], t, stop)
		}
	})
	if err != nil {
		return nil, ctxWrap(err)
	}
	return out, nil
}

func toMatches(hits []pair.Hit) []Match {
	out := make([]Match, len(hits))
	for i, h := range hits {
		out[i] = Match{ID: int(h.ID), Sim: h.Sim}
	}
	return out
}
