package bayeslsh

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"bayeslsh/internal/allpairs"
	"bayeslsh/internal/core"
	"bayeslsh/internal/lshindex"
	"bayeslsh/internal/minhash"
	"bayeslsh/internal/pair"
	"bayeslsh/internal/planner"
	"bayeslsh/internal/rng"
	"bayeslsh/internal/sighash"
	"bayeslsh/internal/stats"
	"bayeslsh/internal/vector"
)

// EngineConfig controls the hashing substrate shared by an Engine's
// searches. The zero value selects the paper's settings.
type EngineConfig struct {
	// Seed makes all randomized components deterministic.
	Seed uint64
	// SignatureBits is the length of cosine bit signatures
	// (default 2048, the paper's LSH Approx setting).
	SignatureBits int
	// MinHashes is the length of Jaccard minhash signatures
	// (default 512; the paper's LSH Approx uses the first 360).
	MinHashes int
	// ExactProjections disables the paper's 2-byte quantized storage
	// of Gaussian projections (§4.3) in favour of float64 storage.
	ExactProjections bool
	// Parallelism is the worker count of the sharded search pipeline:
	// signature hashing, candidate generation (LSH banding and the
	// AllPairs probe phase) and verification are divided over this
	// many goroutines. Both runtime knobs follow one normalization
	// rule — zero selects the adaptive default, negative clamps to the
	// minimum: 0 selects runtime.NumCPU(), negative (like 1) forces
	// the fully sequential pipeline. For a fixed Seed the result set
	// is identical at every setting.
	Parallelism int
	// BatchSize is the number of candidate pairs per unit of work fed
	// to verification workers through the pipeline's channel stage,
	// under the same rule as Parallelism: 0 selects the default 1024,
	// negative clamps to single-pair batches. Smaller batches balance
	// load better; larger batches amortize scheduling overhead over
	// more pairs.
	BatchSize int
}

// withDefaults normalizes the runtime knobs under one rule (zero =
// adaptive default, negative = clamp to the minimum of 1) and fills
// the hashing defaults. Engine construction and Index.SetRuntime both
// go through it, so a loaded snapshot normalizes exactly like a fresh
// engine.
func (c EngineConfig) withDefaults() EngineConfig {
	if c.SignatureBits == 0 {
		c.SignatureBits = 2048
	}
	if c.MinHashes == 0 {
		c.MinHashes = 512
	}
	if c.Parallelism == 0 {
		c.Parallelism = runtime.NumCPU()
	}
	if c.Parallelism < 1 {
		c.Parallelism = 1
	}
	if c.BatchSize == 0 {
		c.BatchSize = 1024
	}
	if c.BatchSize < 1 {
		c.BatchSize = 1
	}
	return c
}

// Engine runs search pipelines over one dataset and one measure,
// computing and caching hash signatures on first use.
type Engine struct {
	ds      *Dataset
	work    *vector.Collection // measure-appropriate view of the data
	measure Measure
	cfg     EngineConfig

	bitStore *sighash.Store
	minStore *minhash.Store
	pln      *planner.Planner
}

// ErrEmptyDataset reports an engine or index built over a nil or
// zero-length dataset — there is nothing to search, so construction
// fails rather than every later call.
var ErrEmptyDataset = errors.New("bayeslsh: empty dataset")

// NewEngine creates an engine for the dataset under the measure. For
// Cosine the dataset should already be normalized (Dataset.Normalize);
// for Jaccard and BinaryCosine weights are ignored or binarized
// internally. A nil or empty dataset returns ErrEmptyDataset.
func NewEngine(ds *Dataset, m Measure, cfg EngineConfig) (*Engine, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, ErrEmptyDataset
	}
	e := &Engine{ds: ds, measure: m, cfg: cfg.withDefaults()}
	switch m {
	case Cosine:
		e.work = ds.c
	case Jaccard, BinaryCosine:
		e.work = ds.c.Binarize().Normalize()
	default:
		return nil, fmt.Errorf("bayeslsh: unknown measure %v", m)
	}
	return e, nil
}

// Measure returns the engine's similarity measure.
func (e *Engine) Measure() Measure { return e.measure }

// workers returns the effective worker count of the sharded pipeline
// (1 means fully sequential).
func (e *Engine) workers() int { return e.cfg.Parallelism }

// bitFamily constructs the engine's seeded hyperplane family. Factored
// out of bitSigStore so the disk-open path (which wires a fixed store
// over mapped signatures) derives its family from exactly the same
// parameters as a heap build — the construction the determinism
// contract hangs off.
func (e *Engine) bitFamily() *sighash.BlockFamily {
	var opts []sighash.Option
	if e.cfg.ExactProjections {
		opts = append(opts, sighash.Exact())
	}
	return sighash.NewBlockFamily(e.work.Dim, e.cfg.SignatureBits, 128, rng.Derive(e.cfg.Seed, 1), opts...)
}

// minFamily constructs the engine's seeded minwise family; see
// bitFamily for why it is factored out.
func (e *Engine) minFamily() *minhash.Family {
	return minhash.NewFamily(e.cfg.MinHashes, rng.Derive(e.cfg.Seed, 2))
}

// bitSigStore lazily constructs the cosine bit-signature store. The
// store materializes hash blocks per vector only as verification
// demands them — the paper's "each point is only hashed as many times
// as is necessary".
func (e *Engine) bitSigStore() *sighash.Store {
	if e.bitStore == nil {
		e.bitStore = sighash.NewStore(e.work, e.bitFamily())
	}
	return e.bitStore
}

// minSigStore lazily constructs the minhash signature store.
func (e *Engine) minSigStore() *minhash.Store {
	if e.minStore == nil {
		e.minStore = minhash.NewStore(e.work, e.minFamily(), 32)
	}
	return e.minStore
}

// hashElapsed sums the hashing time accumulated by the stores so far.
func (e *Engine) hashElapsed() time.Duration {
	var d time.Duration
	if e.bitStore != nil {
		d += e.bitStore.Elapsed()
	}
	if e.minStore != nil {
		d += e.minStore.Elapsed()
	}
	return d
}

// exactSim returns the exact similarity of a pair under the engine's
// measure, evaluated on the original dataset.
func (e *Engine) exactSim(a, b int32) float64 {
	return toExactMeasure(e.measure).Sim(e.ds.c.Vecs[a], e.ds.c.Vecs[b])
}

// collisionProb returns the per-hash collision probability of a pair
// at exactly the threshold similarity.
func (e *Engine) collisionProb(t float64) float64 {
	switch e.measure {
	case Jaccard:
		return t
	default:
		return sighash.CosineToR(t)
	}
}

// lshPlan computes the banding shape for the options' threshold — l
// tables of BandK hashes each, following l = ⌈log ε / log(1−p^k)⌉
// (its multi-probe variant when enabled), clamped to the signature
// budget — and fills every corpus signature deep enough to band it,
// with cancellation polled between vectors (hashing dominates a cold
// engine's cost, so a canceled search must be able to escape it).
// Batch candidate generation and index building share this one plan,
// so a query-serving index probes exactly the tables the batch scan
// would have enumerated.
func (e *Engine) lshPlan(ctx context.Context, o Options) (bandK, l int, err error) {
	p := e.collisionProb(o.Threshold)
	l = lshindex.NumTables(p, o.BandK, o.FalseNegativeRate)
	w := e.workers()
	if e.measure == Jaccard {
		st := e.minSigStore()
		if max := st.MaxHashes() / o.BandK; l > max {
			l = max
		}
		if err := st.EnsureAllCtx(ctx, o.BandK*l, w); err != nil {
			return 0, 0, err
		}
		return o.BandK, l, nil
	}
	st := e.bitSigStore()
	if o.MultiProbe {
		l = lshindex.NumTablesMultiProbe(p, o.BandK, o.FalseNegativeRate)
	}
	if max := st.MaxBits() / o.BandK; l > max {
		l = max
	}
	if err := st.EnsureAllCtx(ctx, o.BandK*l, w); err != nil {
		return 0, 0, err
	}
	return o.BandK, l, nil
}

// lshCandidates generates banded-LSH candidates at the options'
// threshold, with the table count from lshPlan. Cancellation is
// polled throughout: between per-vector signature fills inside
// lshPlan, then between bands and within the collision enumeration.
func (e *Engine) lshCandidates(ctx context.Context, o Options) ([]pair.Pair, error) {
	k, l, err := e.lshPlan(ctx, o)
	if err != nil {
		return nil, err
	}
	w := e.workers()
	if e.measure == Jaccard {
		return lshindex.CandidatesMinhashCtx(ctx, e.minSigStore().Sigs(), k, l, w)
	}
	if o.MultiProbe {
		return lshindex.CandidatesBitsMultiProbeCtx(ctx, e.bitSigStore().Sigs(), k, l, w)
	}
	return lshindex.CandidatesBitsCtx(ctx, e.bitSigStore().Sigs(), k, l, w)
}

// allPairsCandidates generates AllPairs candidates at the options'
// threshold, sharding the probe phase when the engine is parallel and
// polling cancellation between indexed vectors and posting lists.
func (e *Engine) allPairsCandidates(ctx context.Context, o Options) ([]pair.Pair, error) {
	return allpairs.CandidatesMeasureCtx(ctx, e.workInput(), toExactMeasure(e.measure), o.Threshold, e.workers())
}

// workInput returns the collection in the representation AllPairs and
// PPJoin expect for the engine's measure: the raw dataset for Cosine
// (already normalized by the caller) and the raw dataset for binary
// measures (they binarize internally).
func (e *Engine) workInput() *vector.Collection {
	return e.ds.c
}

// bayesVerifier constructs the measure-appropriate core verifier,
// fitting the Jaccard Beta prior from the candidate stream when the
// pipeline needs one. The returned verifier also serves the one-sided
// query path (see core.QueryVerifier); batch search uses only the
// Verifier half. ctx cancels the signature fills the construction may
// trigger (the 1-bit packing path).
func (e *Engine) bayesVerifier(ctx context.Context, o Options, cands []pair.Pair) (core.QueryVerifier, error) {
	return e.bayesVerifierWithPrior(ctx, o, e.fitPrior(o, cands))
}

// fitPrior learns the Jaccard Beta prior from the candidate stream,
// exactly as §4.1 prescribes. Configurations whose verifier takes no
// prior (cosine measures, 1-bit minhash) get the uniform placeholder.
func (e *Engine) fitPrior(o Options, cands []pair.Pair) stats.Beta {
	if e.measure != Jaccard || o.OneBitMinhash {
		return stats.Beta{Alpha: 1, Beta: 1}
	}
	return core.FitJaccardPrior(e.work, cands, o.PriorSample, rng.Derive(e.cfg.Seed, 3))
}

// bayesVerifierWithPrior constructs the verifier for an
// already-determined prior — the path shared by fresh builds (which
// fit the prior from candidates) and snapshot loads (which restore the
// fitted prior verbatim, so a loaded index prunes with the exact
// table the saved one did).
func (e *Engine) bayesVerifierWithPrior(ctx context.Context, o Options, prior stats.Beta) (core.QueryVerifier, error) {
	params := core.Params{
		Threshold: o.Threshold,
		Epsilon:   o.Epsilon,
		Delta:     o.Delta,
		Gamma:     o.Gamma,
		K:         o.K,
		MaxHashes: o.MaxHashes,
	}
	if e.measure == Jaccard {
		st := e.minSigStore()
		if params.MaxHashes > st.MaxHashes() {
			params.MaxHashes = st.MaxHashes()
		}
		if o.OneBitMinhash {
			// 1-bit signatures are packed eagerly from the minhash
			// store (they are 32× smaller, so the packing is cheap).
			if err := st.EnsureAllCtx(ctx, params.MaxHashes, e.workers()); err != nil {
				return nil, err
			}
			sigs := minhash.PackOneBitAll(st.Sigs())
			return core.NewOneBitJaccard(sigs, params.MaxHashes, params)
		}
		params.Ensure = st.Ensure
		return core.NewJaccard(st.Sigs(), prior, params)
	}
	st := e.bitSigStore()
	if params.MaxHashes > st.MaxBits() {
		params.MaxHashes = st.MaxBits()
	}
	params.Ensure = st.Ensure
	return core.NewCosine(st.Sigs(), st.MaxBits(), params)
}
