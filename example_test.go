package bayeslsh_test

import (
	"fmt"
	"log"
	"sort"

	"bayeslsh"
)

// Example demonstrates an end-to-end all-pairs search over a small
// hand-built corpus with exact verification.
func Example() {
	ds := bayeslsh.NewDataset(8)
	ds.Add(map[uint32]float64{0: 1, 1: 2, 2: 3})    // doc 0
	ds.Add(map[uint32]float64{0: 1, 1: 2, 2: 3.1})  // doc 1: near-duplicate of 0
	ds.Add(map[uint32]float64{5: 1, 6: 1})          // doc 2: unrelated
	ds.Add(map[uint32]float64{0: 10, 1: 20, 2: 30}) // doc 3: scaled copy of 0
	ds.Normalize()

	eng, err := bayeslsh.NewEngine(ds, bayeslsh.Cosine, bayeslsh.EngineConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	out, err := eng.Search(bayeslsh.Options{
		Algorithm: bayeslsh.AllPairs, // exact baseline
		Threshold: 0.99,
	})
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(out.Results, func(i, j int) bool {
		a, b := out.Results[i], out.Results[j]
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
	for _, r := range out.Results {
		fmt.Printf("(%d, %d) %.4f\n", r.A, r.B, r.Sim)
	}
	// Output:
	// (0, 1) 0.9999
	// (0, 3) 1.0000
	// (1, 3) 0.9999
}

// ExampleDataset_AddSet shows binary (set) data and Jaccard search.
func ExampleDataset_AddSet() {
	ds := bayeslsh.NewDataset(100)
	ds.AddSet([]uint32{1, 2, 3, 4})
	ds.AddSet([]uint32{2, 3, 4, 5})
	ds.AddSet([]uint32{50, 60})

	eng, err := bayeslsh.NewEngine(ds, bayeslsh.Jaccard, bayeslsh.EngineConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	out, err := eng.Search(bayeslsh.Options{
		Algorithm: bayeslsh.PPJoin,
		Threshold: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range out.Results {
		fmt.Printf("(%d, %d) %.2f\n", r.A, r.B, r.Sim)
	}
	// Output:
	// (0, 1) 0.60
}
