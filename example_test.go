package bayeslsh_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"sort"
	"time"

	"bayeslsh"
)

// Example demonstrates an end-to-end all-pairs search over a small
// hand-built corpus with exact verification.
func Example() {
	ds := bayeslsh.NewDataset(8)
	ds.Add(map[uint32]float64{0: 1, 1: 2, 2: 3})    // doc 0
	ds.Add(map[uint32]float64{0: 1, 1: 2, 2: 3.1})  // doc 1: near-duplicate of 0
	ds.Add(map[uint32]float64{5: 1, 6: 1})          // doc 2: unrelated
	ds.Add(map[uint32]float64{0: 10, 1: 20, 2: 30}) // doc 3: scaled copy of 0
	ds.Normalize()

	eng, err := bayeslsh.NewEngine(ds, bayeslsh.Cosine, bayeslsh.EngineConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	out, err := eng.Search(bayeslsh.Options{
		Algorithm: bayeslsh.AllPairs, // exact baseline
		Threshold: 0.99,
	})
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(out.Results, func(i, j int) bool {
		a, b := out.Results[i], out.Results[j]
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
	for _, r := range out.Results {
		fmt.Printf("(%d, %d) %.4f\n", r.A, r.B, r.Sim)
	}
	// Output:
	// (0, 1) 0.9999
	// (0, 3) 1.0000
	// (1, 3) 0.9999
}

// ExampleIndex_Query builds a query-serving index once and then asks
// which stored vectors are similar to a new, out-of-corpus vector —
// the build-once/query-many mode (see docs/QUERYING.md).
func ExampleIndex_Query() {
	ds := bayeslsh.NewDataset(8)
	ds.Add(map[uint32]float64{0: 1, 1: 2, 2: 3})   // doc 0
	ds.Add(map[uint32]float64{0: 1, 1: 2, 2: 3.1}) // doc 1: near-duplicate of 0
	ds.Add(map[uint32]float64{5: 1, 6: 1})         // doc 2: unrelated
	ds.Normalize()

	ix, err := bayeslsh.NewIndex(ds, bayeslsh.Cosine, bayeslsh.EngineConfig{Seed: 1},
		bayeslsh.Options{Algorithm: bayeslsh.AllPairs, Threshold: 0.9})
	if err != nil {
		log.Fatal(err)
	}
	// The query never enters the dataset; it is hashed with the same
	// seeds and verified against the prebuilt index.
	matches, err := ix.Query(bayeslsh.NewVec(map[uint32]float64{0: 1, 1: 2.1, 2: 3}), bayeslsh.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Printf("%d %.4f\n", m.ID, m.Sim)
	}
	// Output:
	// 0 0.9998
	// 1 0.9993
}

// ExampleIndex_TopK ranks the corpus by exact similarity to a query
// over the index's candidate set.
func ExampleIndex_TopK() {
	ds := bayeslsh.NewDataset(100)
	ds.AddSet([]uint32{1, 2, 3, 4})    // doc 0
	ds.AddSet([]uint32{2, 3, 4, 5})    // doc 1
	ds.AddSet([]uint32{1, 2, 3, 4, 9}) // doc 2
	ds.AddSet([]uint32{50, 60})        // doc 3

	ix, err := bayeslsh.NewIndex(ds, bayeslsh.Jaccard, bayeslsh.EngineConfig{Seed: 1},
		bayeslsh.Options{Algorithm: bayeslsh.BruteForce, Threshold: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	top, err := ix.TopK(bayeslsh.NewSetVec([]uint32{1, 2, 3, 4}), 2)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range top {
		fmt.Printf("%d %.2f\n", m.ID, m.Sim)
	}
	// Output:
	// 0 1.00
	// 2 0.80
}

// ExampleEngine_Stream consumes a search as a stream: pairs arrive as
// verification batches complete (in unspecified order — sort if order
// matters), so the full result set is never resident and the range
// loop can stop — or the context can cancel — at any time (see
// docs/CONTEXTS.md).
func ExampleEngine_Stream() {
	ds := bayeslsh.NewDataset(8)
	ds.Add(map[uint32]float64{0: 1, 1: 2, 2: 3})    // doc 0
	ds.Add(map[uint32]float64{0: 1, 1: 2, 2: 3.1})  // doc 1: near-duplicate of 0
	ds.Add(map[uint32]float64{5: 1, 6: 1})          // doc 2: unrelated
	ds.Add(map[uint32]float64{0: 10, 1: 20, 2: 30}) // doc 3: scaled copy of 0
	ds.Normalize()

	eng, err := bayeslsh.NewEngine(ds, bayeslsh.Cosine, bayeslsh.EngineConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	var found []bayeslsh.Result
	for r, err := range eng.Stream(context.Background(), bayeslsh.Options{
		Algorithm: bayeslsh.AllPairs,
		Threshold: 0.99,
	}) {
		if err != nil {
			log.Fatal(err) // a canceled stream ends with one error element
		}
		found = append(found, r)
	}
	sort.Slice(found, func(i, j int) bool {
		if found[i].A != found[j].A {
			return found[i].A < found[j].A
		}
		return found[i].B < found[j].B
	})
	for _, r := range found {
		fmt.Printf("(%d, %d) %.4f\n", r.A, r.B, r.Sim)
	}
	// Output:
	// (0, 1) 0.9999
	// (0, 3) 1.0000
	// (1, 3) 0.9999
}

// ExampleIndex_QueryContext serves a query under a context, the shape
// of a production request handler: the caller's deadline or
// disconnect cancels the in-flight verification, and the error wraps
// context.Canceled / context.DeadlineExceeded.
func ExampleIndex_QueryContext() {
	ds := bayeslsh.NewDataset(8)
	ds.Add(map[uint32]float64{0: 1, 1: 2, 2: 3})   // doc 0
	ds.Add(map[uint32]float64{0: 1, 1: 2, 2: 3.1}) // doc 1: near-duplicate of 0
	ds.Add(map[uint32]float64{5: 1, 6: 1})         // doc 2: unrelated
	ds.Normalize()

	ix, err := bayeslsh.NewIndex(ds, bayeslsh.Cosine, bayeslsh.EngineConfig{Seed: 1},
		bayeslsh.Options{Algorithm: bayeslsh.AllPairs, Threshold: 0.9})
	if err != nil {
		log.Fatal(err)
	}
	q := bayeslsh.NewVec(map[uint32]float64{0: 1, 1: 2.1, 2: 3})

	// A live context: identical results to Query.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	matches, err := ix.QueryContext(ctx, q, bayeslsh.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Printf("%d %.4f\n", m.ID, m.Sim)
	}

	// A dead context: the query refuses before doing any work.
	done, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	_, err = ix.QueryContext(done, q, bayeslsh.QueryOptions{})
	fmt.Println(errors.Is(err, context.Canceled))
	// Output:
	// 0 0.9998
	// 1 0.9993
	// true
}

// ExampleDataset_AddSet shows binary (set) data and Jaccard search.
func ExampleDataset_AddSet() {
	ds := bayeslsh.NewDataset(100)
	ds.AddSet([]uint32{1, 2, 3, 4})
	ds.AddSet([]uint32{2, 3, 4, 5})
	ds.AddSet([]uint32{50, 60})

	eng, err := bayeslsh.NewEngine(ds, bayeslsh.Jaccard, bayeslsh.EngineConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	out, err := eng.Search(bayeslsh.Options{
		Algorithm: bayeslsh.PPJoin,
		Threshold: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range out.Results {
		fmt.Printf("(%d, %d) %.2f\n", r.A, r.B, r.Sim)
	}
	// Output:
	// (0, 1) 0.60
}

// ExampleIndex_WriteTo snapshots a built index and loads it back —
// the offline-build/online-serve split. The loaded index answers
// queries bit-identically to the one that wrote the snapshot.
func ExampleIndex_WriteTo() {
	ds := bayeslsh.NewDataset(8)
	ds.Add(map[uint32]float64{0: 1, 1: 2, 2: 3})   // doc 0
	ds.Add(map[uint32]float64{0: 1, 1: 2, 2: 3.1}) // doc 1: near-duplicate of 0
	ds.Add(map[uint32]float64{5: 1, 6: 1})         // doc 2: unrelated
	ds.Normalize()

	built, err := bayeslsh.NewIndex(ds, bayeslsh.Cosine, bayeslsh.EngineConfig{Seed: 1},
		bayeslsh.Options{Algorithm: bayeslsh.AllPairs, Threshold: 0.9})
	if err != nil {
		log.Fatal(err)
	}

	// Offline: serialize the build. SaveFile is the file-backed form.
	var snap bytes.Buffer
	if _, err := built.WriteTo(&snap); err != nil {
		log.Fatal(err)
	}

	// Online: a serving process loads the snapshot instead of rebuilding.
	ix, err := bayeslsh.ReadIndex(&snap)
	if err != nil {
		log.Fatal(err)
	}
	matches, err := ix.Query(bayeslsh.NewVec(map[uint32]float64{0: 1, 1: 2.1, 2: 3}), bayeslsh.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Printf("%d %.4f\n", m.ID, m.Sim)
	}
	// Output:
	// 0 0.9998
	// 1 0.9993
}

// ExampleLiveIndex demonstrates the live (ingest-while-serving)
// index: mutations next to queries, a forced merge, and a delete.
func ExampleLiveIndex() {
	ds := bayeslsh.NewDataset(8)
	ds.Add(map[uint32]float64{0: 1, 1: 2, 2: 3}) // doc 0
	ds.Add(map[uint32]float64{5: 1, 6: 1})       // doc 1: unrelated
	ds.Normalize()

	li, err := bayeslsh.NewLiveIndex(ds, bayeslsh.Cosine,
		bayeslsh.EngineConfig{Seed: 1},
		bayeslsh.Options{Algorithm: bayeslsh.AllPairs, Threshold: 0.9},
		bayeslsh.LiveConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer li.Close()

	// Re-ingest doc 0 under a new id (an exact duplicate; cosine
	// corpora must be unit-normalized, like Dataset.Normalize leaves
	// them) and query for it immediately.
	id, err := li.Add(ds.Vector(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("added id:", id)

	matches, err := li.Query(ds.Vector(0), bayeslsh.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Printf("match %d sim %.2f\n", m.ID, m.Sim)
	}

	li.Compact() // fold the delta into a fresh base (normally automatic)
	li.Delete(id)
	matches, _ = li.Query(ds.Vector(0), bayeslsh.QueryOptions{})
	fmt.Println("matches after delete:", len(matches))
	// Output:
	// added id: 2
	// match 0 sim 1.00
	// match 2 sim 1.00
	// matches after delete: 1
}
