package bayeslsh

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"bayeslsh/internal/snapshot"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden snapshots")

// snapshotConfigs is the measure side of the round-trip matrix,
// matching the thresholds of the query consistency tests.
func snapshotConfigs() []queryTestConfig {
	return queryTestConfigs()
}

// buildTestIndex builds an index over a small corpus for one
// measure × algorithm cell.
func buildTestIndex(t *testing.T, tc queryTestConfig, alg Algorithm, n int) (*Dataset, *Index) {
	t.Helper()
	ds := tc.prep(smallDataset(t, n))
	ix, err := NewIndex(ds, tc.measure, tc.cfg, Options{Algorithm: alg, Threshold: tc.threshold})
	if err != nil {
		t.Fatalf("%v/%v: %v", tc.measure, alg, err)
	}
	return ds, ix
}

// roundTrip serializes ix and loads it back.
func roundTrip(t *testing.T, ix *Index) *Index {
	t.Helper()
	var buf bytes.Buffer
	n, err := ix.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	loaded, err := ReadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadIndex: %v", err)
	}
	return loaded
}

// TestSnapshotRoundTrip is the persistence guarantee: for every
// measure and pipeline, an index loaded from a snapshot serves
// Query, TopK and QueryBatch results bit-identical to the index that
// wrote it — including queries that trigger lazy signature fills and
// out-of-corpus queries hashed after the load.
func TestSnapshotRoundTrip(t *testing.T) {
	const n = 200
	for _, tc := range snapshotConfigs() {
		tc := tc
		t.Run(tc.measure.String(), func(t *testing.T) {
			for _, alg := range queryAlgorithms() {
				ds, ix := buildTestIndex(t, tc, alg, n)
				loaded := roundTrip(t, ix)

				if loaded.Measure() != ix.Measure() || loaded.Threshold() != ix.Threshold() ||
					loaded.Len() != ix.Len() || loaded.Options() != ix.Options() {
					t.Fatalf("%v: loaded index metadata differs: %+v vs %+v",
						alg, loaded.Options(), ix.Options())
				}
				if ls, ws := loaded.Stats(), ix.Stats(); ls.Tables != ws.Tables ||
					ls.BandK != ws.BandK || ls.PriorCandidates != ws.PriorCandidates {
					t.Fatalf("%v: loaded stats %+v, want %+v", alg, ls, ws)
				}

				queries := make([]Vec, ds.Len())
				for i := range queries {
					queries[i] = ds.Vector(i)
				}
				want, err := ix.QueryBatch(queries, QueryOptions{})
				if err != nil {
					t.Fatalf("%v: %v", alg, err)
				}
				got, err := loaded.QueryBatch(queries, QueryOptions{})
				if err != nil {
					t.Fatalf("%v: %v", alg, err)
				}
				requireSameMatches(t, got, want)

				// Out-of-corpus query: hashed from the re-derived seed
				// streams on both sides.
				oov := NewVec(map[uint32]float64{1: 0.7, 5: 0.3, 9: 0.65})
				a, err := ix.Query(oov, QueryOptions{})
				if err != nil {
					t.Fatalf("%v: %v", alg, err)
				}
				b, err := loaded.Query(oov, QueryOptions{})
				if err != nil {
					t.Fatalf("%v: %v", alg, err)
				}
				requireSameMatches(t, [][]Match{b}, [][]Match{a})

				for i := 0; i < 10; i++ {
					wk, err := ix.TopK(ds.Vector(i), 5)
					if err != nil {
						t.Fatalf("%v: %v", alg, err)
					}
					gk, err := loaded.TopK(ds.Vector(i), 5)
					if err != nil {
						t.Fatalf("%v: %v", alg, err)
					}
					requireSameMatches(t, [][]Match{gk}, [][]Match{wk})
				}
			}
		})
	}
}

// TestSnapshotRoundTripVariants covers the option-dependent paths the
// main matrix skips: multi-probe banding and 1-bit minhash.
func TestSnapshotRoundTripVariants(t *testing.T) {
	cases := []struct {
		name string
		m    Measure
		cfg  EngineConfig
		prep func(*Dataset) *Dataset
		opts Options
	}{
		{"multiprobe", Cosine, EngineConfig{Seed: 7, SignatureBits: 1024},
			func(d *Dataset) *Dataset { return d.TfIdf().Normalize() },
			Options{Algorithm: LSHBayesLSHLite, Threshold: 0.7, MultiProbe: true}},
		{"onebit", Jaccard, EngineConfig{Seed: 8},
			func(d *Dataset) *Dataset { return d.Binarize() },
			Options{Algorithm: LSHBayesLSH, Threshold: 0.4, OneBitMinhash: true}},
		{"exactproj", Cosine, EngineConfig{Seed: 9, SignatureBits: 1024, ExactProjections: true},
			func(d *Dataset) *Dataset { return d.TfIdf().Normalize() },
			Options{Algorithm: LSHBayesLSH, Threshold: 0.7}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			ds := c.prep(smallDataset(t, 200))
			ix, err := NewIndex(ds, c.m, c.cfg, c.opts)
			if err != nil {
				t.Fatal(err)
			}
			loaded := roundTrip(t, ix)
			queries := make([]Vec, ds.Len())
			for i := range queries {
				queries[i] = ds.Vector(i)
			}
			want, err := ix.QueryBatch(queries, QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := loaded.QueryBatch(queries, QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			requireSameMatches(t, got, want)
		})
	}
}

// TestSnapshotRuntimeKnobs verifies a loaded index is deterministic
// across SetRuntime settings: Parallelism and BatchSize shard the
// work, never change the answers — the same guarantee the in-memory
// index makes.
func TestSnapshotRuntimeKnobs(t *testing.T) {
	ds := smallDataset(t, 200).TfIdf().Normalize()
	ix, err := NewIndex(ds, Cosine, EngineConfig{Seed: 7, SignatureBits: 1024},
		Options{Algorithm: LSHBayesLSH, Threshold: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	queries := make([]Vec, ds.Len())
	for i := range queries {
		queries[i] = ds.Vector(i)
	}
	var want [][]Match
	for i, knobs := range []struct{ p, b int }{{1, 1}, {4, 16}, {0, 0}} {
		loaded, err := ReadIndex(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		loaded.SetRuntime(knobs.p, knobs.b)
		got, err := loaded.QueryBatch(queries, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = got
			continue
		}
		requireSameMatches(t, got, want)
	}
}

// TestSnapshotLazyFillAfterLoad saves an index whose stores are only
// partially filled (no queries ran before the save), then drives the
// loaded index so the remaining fills happen post-load — they must
// extend the restored prefixes from the identical seed streams.
func TestSnapshotLazyFillAfterLoad(t *testing.T) {
	ds := smallDataset(t, 200).TfIdf().Normalize()
	build := func() *Index {
		ix, err := NewIndex(ds, Cosine, EngineConfig{Seed: 7, SignatureBits: 1024},
			Options{Algorithm: LSHBayesLSH, Threshold: 0.7})
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	// Saved immediately after build: band depth is filled, verification
	// depth is not.
	loaded := roundTrip(t, build())
	fresh := build()
	for i := 0; i < ds.Len(); i++ {
		want, err := fresh.Query(ds.Vector(i), QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Query(ds.Vector(i), QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		requireSameMatches(t, [][]Match{got}, [][]Match{want})
	}
}

// TestSnapshotFileHelpers exercises SaveFile/LoadFile, including the
// atomic-replace contract (the destination appears only complete).
func TestSnapshotFileHelpers(t *testing.T) {
	ds := smallDataset(t, 120).TfIdf().Normalize()
	ix, err := NewIndex(ds, Cosine, EngineConfig{Seed: 7, SignatureBits: 1024},
		Options{Algorithm: LSH, Threshold: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "index.snap")
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != ix.Len() {
		t.Fatalf("loaded %d vectors, want %d", loaded.Len(), ix.Len())
	}
	want, err := ix.Query(ds.Vector(0), QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Query(ds.Vector(0), QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	requireSameMatches(t, [][]Match{got}, [][]Match{want})
	// Saving over an existing snapshot replaces it.
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "absent.snap")); err == nil {
		t.Fatal("loading a missing file should fail")
	}
}

// TestSetRuntimeDoesNotTouchSharedEngine pins SetRuntime's isolation
// contract: an index built from a live engine detaches onto its own
// engine view, so the engine the caller holds — and its batch
// searches — keep their configured knobs, while the index serves
// identical results under its new ones.
func TestSetRuntimeDoesNotTouchSharedEngine(t *testing.T) {
	ds := smallDataset(t, 150).TfIdf().Normalize()
	eng, err := NewEngine(ds, Cosine, EngineConfig{Seed: 7, SignatureBits: 512, Parallelism: 3, BatchSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := eng.BuildIndex(Options{Algorithm: LSHBayesLSH, Threshold: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ix.Query(ds.Vector(0), QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}

	ix.SetRuntime(1, 1)
	if eng.cfg.Parallelism != 3 || eng.cfg.BatchSize != 256 {
		t.Fatalf("SetRuntime mutated the shared engine: %+v", eng.cfg)
	}
	if ix.engine().cfg.Parallelism != 1 || ix.engine().cfg.BatchSize != 1 {
		t.Fatalf("SetRuntime did not apply to the index: %+v", ix.engine().cfg)
	}
	got, err := ix.Query(ds.Vector(0), QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	requireSameMatches(t, [][]Match{got}, [][]Match{want})
	// The detached view shares the stores — no re-hashing happened.
	if ix.engine().bitStore != eng.bitStore {
		t.Fatal("SetRuntime cloned the signature store")
	}
}

// TestSetRuntimeConcurrentQueries is the -race regression test for
// the atomically-swapped runtime knobs: SetRuntime races against a
// pool of querying goroutines, and every query — whichever engine
// view it lands on — must return the baseline result set.
func TestSetRuntimeConcurrentQueries(t *testing.T) {
	ds := smallDataset(t, 150).TfIdf().Normalize()
	ix, err := NewIndex(ds, Cosine, EngineConfig{Seed: 7, SignatureBits: 512},
		Options{Algorithm: LSHBayesLSH, Threshold: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]Match, 20)
	for i := range want {
		if want[i], err = ix.Query(ds.Vector(i), QueryOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				qi := (g*5 + i) % len(want)
				got, err := ix.Query(ds.Vector(qi), QueryOptions{})
				if err != nil {
					t.Errorf("query during SetRuntime: %v", err)
					return
				}
				if len(got) != len(want[qi]) {
					t.Errorf("query %d under SetRuntime: %d matches, want %d", qi, len(got), len(want[qi]))
					return
				}
				// Batch queries exercise the workers() load on the
				// swapped view as well.
				if _, err := ix.QueryBatch([]Vec{ds.Vector(qi)}, QueryOptions{}); err != nil {
					t.Errorf("batch during SetRuntime: %v", err)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		ix.SetRuntime(1+i%4, 64*(1+i%3))
	}
	close(done)
	wg.Wait()
}

// TestSaveFilePermissions pins the fleet-deployment contract: a fresh
// snapshot is world-readable (0644, not the temp file's 0600), and
// re-saving preserves the permissions of the file it replaces.
func TestSaveFilePermissions(t *testing.T) {
	ds := smallDataset(t, 60).TfIdf().Normalize()
	ix, err := NewIndex(ds, Cosine, EngineConfig{Seed: 2, SignatureBits: 256},
		Options{Algorithm: LSH, Threshold: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "index.snap")
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Mode().Perm() != 0o644 {
		t.Fatalf("fresh snapshot mode %v (%v), want 0644", fi.Mode().Perm(), err)
	}
	if err := os.Chmod(path, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Mode().Perm() != 0o600 {
		t.Fatalf("re-saved snapshot mode %v (%v), want preserved 0600", fi.Mode().Perm(), err)
	}
}

// snapshotBytes serializes a small index for the error-path tests.
func snapshotBytes(t *testing.T) []byte {
	t.Helper()
	ds := smallDataset(t, 80).TfIdf().Normalize()
	ix, err := NewIndex(ds, Cosine, EngineConfig{Seed: 3, SignatureBits: 512},
		Options{Algorithm: LSHBayesLSH, Threshold: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotErrors drives the decoder through the documented failure
// classes: wrong magic, unknown version, corruption, truncation.
func TestSnapshotErrors(t *testing.T) {
	good := snapshotBytes(t)
	if _, err := ReadIndex(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine snapshot failed: %v", err)
	}

	bad := append([]byte("NOTASNAP"), good[8:]...)
	if _, err := ReadIndex(bytes.NewReader(bad)); !errors.Is(err, ErrSnapshotFormat) {
		t.Fatalf("bad magic: %v, want ErrSnapshotFormat", err)
	}
	if _, err := ReadIndex(bytes.NewReader(nil)); !errors.Is(err, ErrSnapshotFormat) {
		t.Fatalf("empty input: %v, want ErrSnapshotFormat", err)
	}

	future := append([]byte{}, good...)
	future[8] = 99 // version field
	if _, err := ReadIndex(bytes.NewReader(future)); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("future version: %v, want ErrSnapshotVersion", err)
	}

	flipped := append([]byte{}, good...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := ReadIndex(bytes.NewReader(flipped)); !errors.Is(err, ErrSnapshotChecksum) {
		t.Fatalf("flipped byte: %v, want ErrSnapshotChecksum", err)
	}

	// Every truncation must fail cleanly — never panic, never succeed.
	for cut := 0; cut < len(good); cut += 97 {
		if _, err := ReadIndex(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes succeeded", cut)
		}
	}
}

// FuzzReadIndex fuzzes the snapshot decoder: any input may fail but
// must never panic, and a pristine snapshot must load.
func FuzzReadIndex(f *testing.F) {
	ds := NewDataset(16)
	ds.Add(map[uint32]float64{1: 0.8, 3: 0.6})
	ds.Add(map[uint32]float64{1: 0.6, 3: 0.8})
	ds.Add(map[uint32]float64{2: 1})
	ds.Normalize()
	ix, err := NewIndex(ds, Cosine, EngineConfig{Seed: 1, SignatureBits: 128},
		Options{Algorithm: AllPairsBayesLSH, Threshold: 0.6})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:len(buf.Bytes())/2])
	f.Add([]byte(snapshotMagic))
	serve := func(t *testing.T, data []byte) {
		ix, err := ReadIndex(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decoded must be servable without panicking.
		if _, err := ix.Query(ds.Vector(0), QueryOptions{}); err != nil {
			t.Logf("query on decoded index: %v", err)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		serve(t, data)
		// Raw mutations almost never pass the CRC gate, which would
		// leave the section decoders unfuzzed — so also re-seal the
		// mutated bytes with a valid prologue and checksum, the way a
		// deliberate forger would, and require the decoders themselves
		// to hold the never-panic line.
		if len(data) < len(snapshotMagic)+8 {
			return
		}
		sealed := append([]byte{}, data...)
		copy(sealed, snapshotMagic)
		binary.LittleEndian.PutUint32(sealed[len(snapshotMagic):], SnapshotVersion)
		binary.LittleEndian.PutUint32(sealed[len(sealed)-4:],
			snapshot.Checksum(sealed[:len(sealed)-4]))
		serve(t, sealed)
	})
}

// TestGoldenSnapshot reads the committed version-1 snapshot, the
// compatibility contract of the format: if HEAD can no longer read
// it, version 1 has been broken and SnapshotVersion must be bumped
// instead. Regenerate deliberately with -update after such a bump.
func TestGoldenSnapshot(t *testing.T) {
	const path = "testdata/v1.snap"
	if *updateGolden {
		ds := goldenDataset()
		ix, err := NewIndex(ds, Cosine, EngineConfig{Seed: 41, SignatureBits: 256},
			Options{Algorithm: LSHBayesLSH, Threshold: 0.6})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := ix.SaveFile(path); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := LoadFile(path)
	if err != nil {
		t.Fatalf("HEAD cannot read the committed v1 snapshot: %v", err)
	}
	// The golden index must also still serve: rebuild the same index
	// from source data and require identical results.
	fresh, err := NewIndex(goldenDataset(), Cosine, EngineConfig{Seed: 41, SignatureBits: 256},
		Options{Algorithm: LSHBayesLSH, Threshold: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	ds := goldenDataset()
	for i := 0; i < ds.Len(); i++ {
		want, err := fresh.Query(ds.Vector(i), QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := ix.Query(ds.Vector(i), QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		requireSameMatches(t, [][]Match{got}, [][]Match{want})
	}
}

// goldenDataset is the tiny fixed corpus behind testdata/v1.snap,
// constructed in code so the golden test needs no second data file.
func goldenDataset() *Dataset {
	ds := NewDataset(32)
	for i := 0; i < 24; i++ {
		v := map[uint32]float64{}
		for j := 0; j < 6; j++ {
			v[uint32((i*5+j*7)%32)] = float64(1+(i+j)%4) / 2
		}
		ds.Add(v)
	}
	return ds.TfIdf().Normalize()
}
