package bayeslsh_test

import (
	"fmt"
	"testing"
	"time"

	"bayeslsh"
	"bayeslsh/internal/harness"
)

// The planner quality gate: on every corpus profile × measure ×
// threshold cell, the pipeline AutoPipeline picks must not be
// meaningfully slower than the best pipeline for that cell. "Not
// meaningfully" is a 25% relative margin plus a small absolute grace,
// because at CI corpus sizes the fastest pipelines finish in tens of
// milliseconds and scheduler noise would otherwise gate the build on
// coin flips. The gate still catches real misplans — choosing
// BruteForce on a large sparse corpus, or AllPairs at a threshold
// where hashing prunes 100× — which cost multiples, not percents.

// qualityGrace absorbs timer and scheduler noise on the 1-CPU CI
// runner; a misplanned cell overshoots by far more than this.
const qualityGrace = 75 * time.Millisecond

// bestOf times one pipeline's full self-join, fresh engine per run so
// no candidate inherits another's hash stores, and keeps the fastest
// of reps runs.
func bestOf(tb testing.TB, ds *bayeslsh.Dataset, m bayeslsh.Measure, alg bayeslsh.Algorithm, threshold float64, reps int) time.Duration {
	tb.Helper()
	best := time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		eng, err := bayeslsh.NewEngine(ds, m, bayeslsh.EngineConfig{Seed: 7, Parallelism: 2})
		if err != nil {
			tb.Fatal(err)
		}
		start := time.Now()
		if _, err := eng.Search(bayeslsh.Options{Algorithm: alg, Threshold: threshold}); err != nil {
			tb.Fatalf("%v: %v", alg, err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// TestPlannerQuality is the CI gate. Candidates are every exact
// pipeline the measure supports plus BruteForce; LSHApprox is
// excluded because it trades recall for speed — beating it is not a
// planning failure.
func TestPlannerQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("timing harness; skipped under -short")
	}
	for _, p := range harness.Profiles() {
		spec := p.Spec
		spec.N = 1000 // enough corpus for timing signal over the grace margin
		prof := harness.Profile{Name: p.Name, Spec: spec}
		for _, cell := range planCells {
			t.Run(fmt.Sprintf("%s/%v/t=%.2f", p.Name, cell.measure, cell.threshold), func(t *testing.T) {
				ds := harness.ProfileDataset(t, prof, cell.measure)
				plan := bayeslsh.ChoosePlan(ds.CorpusStats(), bayeslsh.PlanQuery{
					Measure: cell.measure, Threshold: cell.threshold,
				})
				chosen := bayeslsh.Algorithm(plan.Pipeline)

				candidates := []bayeslsh.Algorithm{bayeslsh.BruteForce}
				for _, a := range bayeslsh.Algorithms(cell.measure) {
					if a != bayeslsh.LSHApprox {
						candidates = append(candidates, a)
					}
				}

				times := make(map[bayeslsh.Algorithm]time.Duration, len(candidates))
				best := time.Duration(1<<63 - 1)
				for _, a := range candidates {
					d := bestOf(t, ds, cell.measure, a, cell.threshold, 2)
					times[a] = d
					if d < best {
						best = d
					}
				}
				planned, ok := times[chosen]
				if !ok {
					t.Fatalf("planner chose %v, which is not a candidate pipeline", chosen)
				}

				limit := best + best/4 + qualityGrace
				if planned > limit {
					for _, a := range candidates {
						t.Logf("  %-18v %v", a, times[a])
					}
					t.Fatalf("planned %v took %v, best %v within %v; limit %v exceeded",
						chosen, planned, best, qualityGrace, limit)
				}
			})
		}
	}
}
