package bayeslsh

import (
	"bayeslsh/internal/planner"
)

// AutoPipeline planning: Options.AutoPipeline lets the engine choose
// the pipeline instead of the caller. The choice is made by
// internal/planner — a one-pass corpus statistics collector and a
// deterministic greedy rule set — and then the chosen pipeline runs
// through exactly the code path an explicit Options.Algorithm would
// have taken, so an auto-planned search is bit-identical to the
// explicitly-configured search it resolves to (see docs/PLANNER.md and
// the matrix proof in autoplan_test.go).
//
// The types below are aliases of the internal planner's: the root
// package re-exports them rather than wrapping them, and mirrors its
// Measure/Algorithm values onto the planner's enums (checked by
// TestPlannerMirrors).

// CorpusStats are the corpus statistics the planner collects at build
// time — shape, length distribution, vocabulary skew — persisted in
// snapshot meta (v1, v2 and v3) so loaded and disk-opened indexes can
// report them and re-plan without a corpus scan.
type CorpusStats = planner.Stats

// Plan is a planning decision: the chosen pipeline and every greedy
// rule that fired on the way (empty for explicitly-configured builds).
// Plan.Pipeline mirrors Algorithm value for value; convert with
// Algorithm(plan.Pipeline).
type Plan = planner.Plan

// PlanRule is one fired greedy rule: a stable name and the
// human-readable reason it applied (apss plan -why prints these).
type PlanRule = planner.Rule

// PlanQuery is one planning question for ChoosePlan: what pipeline
// should serve this measure, threshold and query shape?
type PlanQuery struct {
	Measure   Measure
	Threshold float64
	// K is the top-k bound (0 for threshold queries); top-k always
	// verifies with exact similarities, steering the plan away from
	// probabilistic verification.
	K int
	// QueryLen is the query's non-zero count when known (0 otherwise).
	QueryLen int
	// Serving demands a query-serving index, excluding PPJoin.
	Serving bool
	// Sharded excludes the pipelines that fit a corpus-global prior
	// (the Jaccard Bayes family without one-bit minhash), which a
	// sharded cluster refuses (see internal/cluster).
	Sharded bool
}

// CorpusStats collects the planner's statistics for the dataset in one
// pass — O(total non-zeros) plus two sorts.
func (d *Dataset) CorpusStats() CorpusStats { return planner.Collect(d.c) }

// ChoosePlan runs the planner's greedy rules over the stats and
// returns the chosen pipeline with the rules that fired. It is a pure
// function; Options.AutoPipeline, apss plan and the sharded router all
// resolve through it (via the same internal planner), so the answer
// cannot drift between the API, the CLI and the cluster.
func ChoosePlan(st CorpusStats, q PlanQuery) Plan {
	return planner.Choose(st, planner.Request{
		Measure:       planner.Measure(q.Measure),
		Threshold:     q.Threshold,
		K:             q.K,
		QueryLen:      q.QueryLen,
		Serving:       q.Serving,
		NoGlobalPrior: q.Sharded,
	})
}

// corpusPlanner lazily collects the engine's corpus statistics and
// wraps them in the planner's plan cache. Like the engine's signature
// stores, first use is single-goroutine (the build phase); the
// returned planner itself is safe for concurrent use.
func (e *Engine) corpusPlanner() *planner.Planner {
	if e.pln == nil {
		e.pln = planner.New(planner.Collect(e.ds.c))
	}
	return e.pln
}

// resolveAuto resolves Options.AutoPipeline into a concrete Algorithm
// through the engine's plan cache, clearing the flag so the resolved
// Options never re-plan — a LiveIndex merge rebuilding with the
// carried Options must reproduce the same pipeline bit-for-bit, not
// re-run the rules over a drifted corpus.
func (e *Engine) resolveAuto(o Options, serving bool) (Options, Plan) {
	pl := e.corpusPlanner().Plan(planner.Request{
		Measure:   planner.Measure(e.measure),
		Threshold: o.Threshold,
		Serving:   serving,
	})
	o.Algorithm = Algorithm(pl.Pipeline)
	o.AutoPipeline = false
	return o, pl
}
