package bayeslsh

import (
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bayeslsh/internal/diskidx"
	"bayeslsh/internal/snapshot"
)

// saveV3 writes ix as a disk-servable snapshot into a temp dir.
func saveV3(t *testing.T, ix *Index) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "index.v3.snap")
	if err := ix.SaveFileV3(path); err != nil {
		t.Fatalf("SaveFileV3: %v", err)
	}
	return path
}

// openV3 round-trips ix through a v3 file and opens it mmap-backed,
// closing the mapping when the test ends.
func openV3(t *testing.T, ix *Index) *Index {
	t.Helper()
	opened, err := OpenIndexFile(saveV3(t, ix))
	if err != nil {
		t.Fatalf("OpenIndexFile: %v", err)
	}
	t.Cleanup(func() { opened.Close() })
	return opened
}

// TestDiskSnapshotRoundTrip is the determinism contract of the disk
// path: for every measure and pipeline, three indexes — the cold
// build, a heap load of its v1 snapshot, and an mmap open of its v3
// snapshot — serve bit-identical Query, TopK and QueryBatch answers,
// including out-of-corpus queries hashed after the open.
func TestDiskSnapshotRoundTrip(t *testing.T) {
	const n = 200
	for _, tc := range snapshotConfigs() {
		tc := tc
		t.Run(tc.measure.String(), func(t *testing.T) {
			for _, alg := range queryAlgorithms() {
				ds, cold := buildTestIndex(t, tc, alg, n)
				heap := roundTrip(t, cold)
				disk := openV3(t, cold)

				if disk.Measure() != cold.Measure() || disk.Threshold() != cold.Threshold() ||
					disk.Len() != cold.Len() || disk.Options() != cold.Options() {
					t.Fatalf("%v: opened index metadata differs: %+v vs %+v",
						alg, disk.Options(), cold.Options())
				}

				queries := make([]Vec, ds.Len())
				for i := range queries {
					queries[i] = ds.Vector(i)
				}
				want, err := cold.QueryBatch(queries, QueryOptions{})
				if err != nil {
					t.Fatalf("%v: %v", alg, err)
				}
				fromHeap, err := heap.QueryBatch(queries, QueryOptions{})
				if err != nil {
					t.Fatalf("%v: %v", alg, err)
				}
				requireSameMatches(t, fromHeap, want)
				fromDisk, err := disk.QueryBatch(queries, QueryOptions{})
				if err != nil {
					t.Fatalf("%v: %v", alg, err)
				}
				requireSameMatches(t, fromDisk, want)

				oov := NewVec(map[uint32]float64{1: 0.7, 5: 0.3, 9: 0.65})
				a, err := cold.Query(oov, QueryOptions{})
				if err != nil {
					t.Fatalf("%v: %v", alg, err)
				}
				b, err := disk.Query(oov, QueryOptions{})
				if err != nil {
					t.Fatalf("%v: %v", alg, err)
				}
				requireSameMatches(t, [][]Match{b}, [][]Match{a})

				for i := 0; i < 10; i++ {
					wk, err := cold.TopK(ds.Vector(i), 5)
					if err != nil {
						t.Fatalf("%v: %v", alg, err)
					}
					gk, err := disk.TopK(ds.Vector(i), 5)
					if err != nil {
						t.Fatalf("%v: %v", alg, err)
					}
					requireSameMatches(t, [][]Match{gk}, [][]Match{wk})
				}
			}
		})
	}
}

// TestDiskSnapshotVariants covers the option-dependent disk paths the
// main matrix skips: multi-probe banding, 1-bit minhash verification
// (whose packed words are rebuilt from the mapped rows at open), and
// exact projections.
func TestDiskSnapshotVariants(t *testing.T) {
	cases := []struct {
		name string
		m    Measure
		cfg  EngineConfig
		prep func(*Dataset) *Dataset
		opts Options
	}{
		{"multiprobe", Cosine, EngineConfig{Seed: 7, SignatureBits: 1024},
			func(d *Dataset) *Dataset { return d.TfIdf().Normalize() },
			Options{Algorithm: LSHBayesLSHLite, Threshold: 0.7, MultiProbe: true}},
		{"onebit", Jaccard, EngineConfig{Seed: 8},
			func(d *Dataset) *Dataset { return d.Binarize() },
			Options{Algorithm: LSHBayesLSH, Threshold: 0.4, OneBitMinhash: true}},
		{"exactproj", Cosine, EngineConfig{Seed: 9, SignatureBits: 1024, ExactProjections: true},
			func(d *Dataset) *Dataset { return d.TfIdf().Normalize() },
			Options{Algorithm: LSHBayesLSH, Threshold: 0.7}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			ds := c.prep(smallDataset(t, 200))
			ix, err := NewIndex(ds, c.m, c.cfg, c.opts)
			if err != nil {
				t.Fatal(err)
			}
			disk := openV3(t, ix)
			queries := make([]Vec, ds.Len())
			for i := range queries {
				queries[i] = ds.Vector(i)
			}
			want, err := ix.QueryBatch(queries, QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := disk.QueryBatch(queries, QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			requireSameMatches(t, got, want)
		})
	}
}

// TestDiskLiveServing drives a LiveIndex whose base serves from a
// mapped v3 snapshot through the full life cycle — queries, ingest,
// deletes, a forced merge that folds the mapped corpus into a heap
// generation — against a twin whose base was heap-built, requiring
// identical answers at every step.
func TestDiskLiveServing(t *testing.T) {
	ds := smallDataset(t, 200).TfIdf().Normalize()
	build := func() *Index {
		ix, err := NewIndex(ds, Cosine, EngineConfig{Seed: 7, SignatureBits: 1024},
			Options{Algorithm: LSHBayesLSH, Threshold: 0.7})
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	lc := LiveConfig{MaxDelta: -1, MaxRatio: -1}
	heapLive, err := LiveFrom(build(), lc)
	if err != nil {
		t.Fatal(err)
	}
	defer heapLive.Close()
	diskLive, err := LiveFrom(openV3(t, build()), lc)
	if err != nil {
		t.Fatal(err)
	}
	defer diskLive.Close()
	if !diskLive.MemStats().DiskBacked {
		t.Fatal("LiveFrom over an opened v3 index should report DiskBacked")
	}

	check := func(stage string) {
		t.Helper()
		for i := 0; i < 40; i++ {
			want, err := heapLive.Query(ds.Vector(i), QueryOptions{})
			if err != nil {
				t.Fatalf("%s: %v", stage, err)
			}
			got, err := diskLive.Query(ds.Vector(i), QueryOptions{})
			if err != nil {
				t.Fatalf("%s: %v", stage, err)
			}
			requireSameMatches(t, [][]Match{got}, [][]Match{want})
		}
	}
	check("base")

	for i := 0; i < 30; i++ {
		v := ds.Vector(i % 10)
		a, err := heapLive.Add(v)
		if err != nil {
			t.Fatal(err)
		}
		b, err := diskLive.Add(v)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("ingest ids diverged: %d vs %d", a, b)
		}
	}
	heapLive.Delete(3)
	diskLive.Delete(3)
	check("after ingest")

	// A live index over a disk-backed base cannot snapshot — the v3
	// file *is* the base — until a merge folds everything to the heap.
	if err := diskLive.SaveFile(filepath.Join(t.TempDir(), "live.snap")); !errors.Is(err, ErrDiskBacked) {
		t.Fatalf("SaveFile over a disk-backed base: %v, want ErrDiskBacked", err)
	}
	if err := heapLive.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := diskLive.Compact(); err != nil {
		t.Fatal(err)
	}
	check("after merge")
	if diskLive.MemStats().DiskBacked {
		t.Fatal("after a merge the compacted base should be heap-resident")
	}
	if err := diskLive.SaveFile(filepath.Join(t.TempDir(), "live.snap")); err != nil {
		t.Fatalf("SaveFile after merge: %v", err)
	}
}

// TestDiskBackedErrors pins ErrDiskBacked: a disk-backed index cannot
// be re-serialized by any writer — its file already is the snapshot.
func TestDiskBackedErrors(t *testing.T) {
	ds := smallDataset(t, 120).TfIdf().Normalize()
	ix, err := NewIndex(ds, Cosine, EngineConfig{Seed: 7, SignatureBits: 512},
		Options{Algorithm: LSH, Threshold: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	disk := openV3(t, ix)
	if _, err := disk.WriteTo(io.Discard); !errors.Is(err, ErrDiskBacked) {
		t.Fatalf("WriteTo: %v, want ErrDiskBacked", err)
	}
	if err := disk.SaveFile(filepath.Join(t.TempDir(), "x.snap")); !errors.Is(err, ErrDiskBacked) {
		t.Fatalf("SaveFile: %v, want ErrDiskBacked", err)
	}
	if err := disk.SaveFileV3(filepath.Join(t.TempDir(), "x.v3.snap")); !errors.Is(err, ErrDiskBacked) {
		t.Fatalf("SaveFileV3: %v, want ErrDiskBacked", err)
	}
}

// TestOpenLiveFileVersions pins the sniffing restore chain: the same
// corpus saved as v1 (base), v2 (live) and v3 (disk-servable) all
// restore through the single OpenLiveFile entry point and serve
// identical answers; only the v3 restore is disk-backed.
func TestOpenLiveFileVersions(t *testing.T) {
	ds := smallDataset(t, 150).TfIdf().Normalize()
	ix, err := NewIndex(ds, Cosine, EngineConfig{Seed: 7, SignatureBits: 512},
		Options{Algorithm: LSHBayesLSH, Threshold: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	lc := LiveConfig{MaxDelta: -1, MaxRatio: -1}
	dir := t.TempDir()

	v1 := filepath.Join(dir, "v1.snap")
	if err := ix.SaveFile(v1); err != nil {
		t.Fatal(err)
	}
	v3 := filepath.Join(dir, "v3.snap")
	if err := ix.SaveFileV3(v3); err != nil {
		t.Fatal(err)
	}
	seedLive, err := LiveFrom(ix, lc)
	if err != nil {
		t.Fatal(err)
	}
	v2 := filepath.Join(dir, "v2.snap")
	if err := seedLive.SaveFile(v2); err != nil {
		t.Fatal(err)
	}
	want, err := seedLive.Query(ds.Vector(0), QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seedLive.Close()

	for _, c := range []struct {
		path string
		disk bool
	}{{v1, false}, {v2, false}, {v3, true}} {
		li, err := OpenLiveFile(c.path, lc)
		if err != nil {
			t.Fatalf("OpenLiveFile(%s): %v", c.path, err)
		}
		if got := li.MemStats().DiskBacked; got != c.disk {
			t.Fatalf("%s: DiskBacked=%v, want %v", c.path, got, c.disk)
		}
		got, err := li.Query(ds.Vector(0), QueryOptions{})
		if err != nil {
			t.Fatalf("%s: %v", c.path, err)
		}
		requireSameMatches(t, [][]Match{got}, [][]Match{want})
		li.Close()
	}

	if _, err := OpenLiveFile(filepath.Join(dir, "absent.snap"), lc); err == nil {
		t.Fatal("OpenLiveFile on a missing file should fail")
	}
	junk := filepath.Join(dir, "junk.snap")
	if err := os.WriteFile(junk, []byte("NOTASNAPxxxxxxxxxxxxxxxx"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLiveFile(junk, lc); !errors.Is(err, ErrSnapshotFormat) {
		t.Fatalf("OpenLiveFile on junk: %v, want ErrSnapshotFormat", err)
	}
}

// TestDiskVersionErrors is the cross-version routing table: every
// loader handed a file of the wrong version must return
// ErrSnapshotVersion naming both the version it found and the entry
// point that reads it — never a checksum or format error.
func TestDiskVersionErrors(t *testing.T) {
	ds := smallDataset(t, 100).TfIdf().Normalize()
	ix, err := NewIndex(ds, Cosine, EngineConfig{Seed: 3, SignatureBits: 256},
		Options{Algorithm: LSH, Threshold: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	v1 := filepath.Join(dir, "v1.snap")
	if err := ix.SaveFile(v1); err != nil {
		t.Fatal(err)
	}
	v3 := filepath.Join(dir, "v3.snap")
	if err := ix.SaveFileV3(v3); err != nil {
		t.Fatal(err)
	}
	li, err := LiveFrom(ix, LiveConfig{MaxDelta: -1, MaxRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	v2 := filepath.Join(dir, "v2.snap")
	if err := li.SaveFile(v2); err != nil {
		t.Fatal(err)
	}
	li.Close()

	// A future version, sniffing-proof for every loader.
	future := filepath.Join(dir, "v99.snap")
	buf, err := os.ReadFile(v1)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(buf[len(snapshotMagic):], 99)
	if err := os.WriteFile(future, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		load func(string) error
		path string
		want []string // substrings the diagnosis must carry
	}{
		{"LoadFile/v2", func(p string) error { _, err := LoadFile(p); return err }, v2,
			[]string{"version 2", "ReadLiveIndex or LoadLiveFile"}},
		{"LoadFile/v3", func(p string) error { _, err := LoadFile(p); return err }, v3,
			[]string{"version 3", "OpenIndexFile"}},
		{"LoadLiveFile/v1", func(p string) error {
			_, err := LoadLiveFile(p, LiveConfig{})
			return err
		}, v1, []string{"version 1"}},
		{"LoadLiveFile/v3", func(p string) error {
			_, err := LoadLiveFile(p, LiveConfig{})
			return err
		}, v3, []string{"version 3", "OpenIndexFile"}},
		{"OpenIndexFile/v1", func(p string) error { _, err := OpenIndexFile(p); return err }, v1,
			[]string{"version 1", "ReadIndex or LoadFile"}},
		{"OpenIndexFile/v2", func(p string) error { _, err := OpenIndexFile(p); return err }, v2,
			[]string{"version 2", "ReadLiveIndex or LoadLiveFile"}},
		{"LoadFile/v99", func(p string) error { _, err := LoadFile(p); return err }, future,
			[]string{"version 99", "OpenIndexFile", "ReadIndex", "ReadLiveIndex"}},
		{"OpenLiveFile/v99", func(p string) error {
			_, err := OpenLiveFile(p, LiveConfig{})
			return err
		}, future, []string{"version 99"}},
		{"InspectFile/v99", func(p string) error { _, err := InspectFile(p); return err }, future,
			[]string{"version 99"}},
	}
	for _, c := range cases {
		err := c.load(c.path)
		if !errors.Is(err, ErrSnapshotVersion) {
			t.Fatalf("%s: %v, want ErrSnapshotVersion", c.name, err)
		}
		for _, sub := range c.want {
			if !strings.Contains(err.Error(), sub) {
				t.Fatalf("%s: diagnosis %q does not name %q", c.name, err, sub)
			}
		}
	}
}

// corruptFileAt flips one byte of a file copy and returns the copy's
// path.
func corruptFileAt(t *testing.T, path string, off int64) string {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off >= int64(len(buf)) {
		t.Fatalf("corruption offset %d beyond %d-byte file", off, len(buf))
	}
	buf[off] ^= 0x40
	bad := path + ".bad"
	if err := os.WriteFile(bad, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return bad
}

// TestDiskCorruption pins the first-touch verification model: header
// or metadata damage fails the open; damage to a bulk section leaves
// the open cheap and clean, and surfaces as ErrSnapshotChecksum on
// the first query that needs the section's bytes — deterministically,
// on every later query too.
func TestDiskCorruption(t *testing.T) {
	ds := smallDataset(t, 150).TfIdf().Normalize()
	ix, err := NewIndex(ds, Cosine, EngineConfig{Seed: 7, SignatureBits: 512},
		Options{Algorithm: LSHBayesLSH, Threshold: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	path := saveV3(t, ix)
	f, err := diskidx.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	sects := f.Sections()
	f.Close()
	byTag := map[uint32]diskidx.Section{}
	for _, s := range sects {
		byTag[s.Tag] = s
	}

	// Header page damage: refused at open, as corruption (not version).
	if _, err := OpenIndexFile(corruptFileAt(t, path, int64(len(snapshotMagic)+5))); !errors.Is(err, ErrSnapshotFormat) {
		t.Fatalf("corrupt header: %v, want ErrSnapshotFormat", err)
	}
	// Metadata damage: the meta section is the one section verified
	// eagerly, so the open itself reports the checksum.
	if _, err := OpenIndexFile(corruptFileAt(t, path, byTag[sectMeta].Off+10)); !errors.Is(err, ErrSnapshotChecksum) {
		t.Fatalf("corrupt meta: %v, want ErrSnapshotChecksum", err)
	}

	// Bulk-section damage: open succeeds, first query reports it.
	for _, tag := range []uint32{sectVectors, sectBitStore, sectBitTables} {
		s, ok := byTag[tag]
		if !ok {
			t.Fatalf("section %d missing from %v", tag, sects)
		}
		opened, err := OpenIndexFile(corruptFileAt(t, path, s.Off+s.Len/2))
		if err != nil {
			t.Fatalf("open with corrupt section %d: %v", tag, err)
		}
		for i := 0; i < 2; i++ { // cached: identical on re-query
			if _, err := opened.Query(ds.Vector(0), QueryOptions{}); !errors.Is(err, ErrSnapshotChecksum) {
				t.Fatalf("query %d over corrupt section %d: %v, want ErrSnapshotChecksum", i, tag, err)
			}
		}
		// First-touch is per section, so TopK — which ranks by exact
		// similarity and never reads the stored signature matrix —
		// fails only when the damage is in a section it dereferences.
		_, err = opened.TopK(ds.Vector(0), 3)
		if wantErr := tag != sectBitStore; (err != nil) != wantErr {
			t.Fatalf("topk over corrupt section %d: err=%v, want failure=%v", tag, err, wantErr)
		}
		if err != nil && !errors.Is(err, ErrSnapshotChecksum) {
			t.Fatalf("topk over corrupt section %d: %v, want ErrSnapshotChecksum", tag, err)
		}
		opened.Close()
	}

	// The same damage surfaces through a live wrapper's queries.
	opened, err := OpenIndexFile(corruptFileAt(t, path, byTag[sectBitTables].Off+byTag[sectBitTables].Len/2))
	if err != nil {
		t.Fatal(err)
	}
	li, err := LiveFrom(opened, LiveConfig{MaxDelta: -1, MaxRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := li.Query(ds.Vector(0), QueryOptions{}); !errors.Is(err, ErrSnapshotChecksum) {
		t.Fatalf("live query over corrupt section: %v, want ErrSnapshotChecksum", err)
	}
	// Compact with nothing to fold is a no-op; ingest one vector so the
	// merge really runs — it must refuse to adopt bytes from the damaged
	// mapping, leaving the previous generation serving.
	if _, err := li.Add(ds.Vector(1)); err != nil {
		t.Fatalf("add before compact: %v", err)
	}
	if err := li.Compact(); !errors.Is(err, ErrSnapshotChecksum) {
		t.Fatalf("compact over corrupt section: %v, want ErrSnapshotChecksum", err)
	}
	li.Close()
	opened.Close()
}

// TestDiskMemStats pins the observability surface: a heap index
// reports nothing, a disk-backed one reports the mapping size and a
// residency figure bounded by it.
func TestDiskMemStats(t *testing.T) {
	ds := smallDataset(t, 120).TfIdf().Normalize()
	ix, err := NewIndex(ds, Cosine, EngineConfig{Seed: 7, SignatureBits: 512},
		Options{Algorithm: LSH, Threshold: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if m := ix.MemStats(); m.DiskBacked || m.MappedBytes != 0 || m.ResidentBytes != 0 {
		t.Fatalf("heap index MemStats = %+v, want zero", m)
	}
	path := saveV3(t, ix)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := OpenIndexFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	m := disk.MemStats()
	if !m.DiskBacked || m.MappedBytes != fi.Size() {
		t.Fatalf("MemStats = %+v, want DiskBacked with %d mapped bytes", m, fi.Size())
	}
	if m.ResidentBytes < 0 || m.ResidentBytes > m.MappedBytes {
		t.Fatalf("ResidentBytes %d outside [0, %d]", m.ResidentBytes, m.MappedBytes)
	}
}

// TestInspectFile drives the forensic reader over all three formats
// and the failure classes behind the "apss info" exit-2 contract.
func TestInspectFile(t *testing.T) {
	ds := smallDataset(t, 100).TfIdf().Normalize()
	ix, err := NewIndex(ds, Cosine, EngineConfig{Seed: 3, SignatureBits: 256},
		Options{Algorithm: LSHBayesLSH, Threshold: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	v1 := filepath.Join(dir, "v1.snap")
	if err := ix.SaveFile(v1); err != nil {
		t.Fatal(err)
	}
	v3 := filepath.Join(dir, "v3.snap")
	if err := ix.SaveFileV3(v3); err != nil {
		t.Fatal(err)
	}
	li, err := LiveFrom(ix, LiveConfig{MaxDelta: -1, MaxRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	v2 := filepath.Join(dir, "v2.snap")
	if err := li.SaveFile(v2); err != nil {
		t.Fatal(err)
	}
	li.Close()

	for _, c := range []struct {
		path    string
		version int
	}{{v1, 1}, {v2, 2}, {v3, 3}} {
		info, err := InspectFile(c.path)
		if err != nil {
			t.Fatalf("InspectFile(%s): %v", c.path, err)
		}
		if info.Version != c.version {
			t.Fatalf("%s: version %d, want %d", c.path, info.Version, c.version)
		}
		if info.Vectors != ds.Len() || info.Dim != ds.Dim() {
			t.Fatalf("%s: corpus %d x %d, want %d x %d", c.path, info.Vectors, info.Dim, ds.Len(), ds.Dim())
		}
		if info.Measure != Cosine || info.Algorithm != LSHBayesLSH || info.Threshold != 0.7 {
			t.Fatalf("%s: metadata %v/%v/t=%v", c.path, info.Measure, info.Algorithm, info.Threshold)
		}
		if fi, _ := os.Stat(c.path); info.Size != fi.Size() {
			t.Fatalf("%s: size %d, want %d", c.path, info.Size, fi.Size())
		}
		names := map[string]bool{}
		for _, s := range info.Sections {
			names[s.Name] = true
			if s.Len < 0 || s.Off < 0 || s.Off+s.Len > info.Size {
				t.Fatalf("%s: section %+v outside the file", c.path, s)
			}
			if c.version == 3 && s.Off%4096 != 0 {
				t.Fatalf("%s: v3 section %+v not page-aligned", c.path, s)
			}
		}
		if !names["meta"] || !names["vectors"] {
			t.Fatalf("%s: sections %v missing meta/vectors", c.path, info.Sections)
		}
	}

	// Every failure class reports, never panics: flipped bytes in each
	// format (for v3, inside a section — header-page padding is not
	// covered by any checksum), junk, truncation, absence.
	for p, off := range map[string]int64{v1: 3000, v2: 3000, v3: 4096 + 50} {
		if _, err := InspectFile(corruptFileAt(t, p, off)); err == nil {
			t.Fatalf("InspectFile on corrupt %s should fail", p)
		}
	}
	junk := filepath.Join(dir, "junk.snap")
	if err := os.WriteFile(junk, []byte("not a snapshot at all......"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := InspectFile(junk); !errors.Is(err, ErrSnapshotFormat) {
		t.Fatalf("InspectFile on junk: %v, want ErrSnapshotFormat", err)
	}
	if _, err := InspectFile(filepath.Join(dir, "absent.snap")); err == nil {
		t.Fatal("InspectFile on a missing file should fail")
	}
}

// TestGoldenDiskSnapshot reads the committed version-3 snapshot, the
// compatibility contract of the disk format: if HEAD can no longer
// open it, version 3 has been broken and DiskSnapshotVersion must be
// bumped instead. Regenerate deliberately with -update after such a
// bump.
func TestGoldenDiskSnapshot(t *testing.T) {
	const path = "testdata/v3.snap"
	if *updateGolden {
		ds := goldenDataset()
		ix, err := NewIndex(ds, Cosine, EngineConfig{Seed: 41, SignatureBits: 256},
			Options{Algorithm: LSHBayesLSH, Threshold: 0.6})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := ix.SaveFileV3(path); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := OpenIndexFile(path)
	if err != nil {
		t.Fatalf("HEAD cannot open the committed v3 snapshot: %v", err)
	}
	defer ix.Close()
	fresh, err := NewIndex(goldenDataset(), Cosine, EngineConfig{Seed: 41, SignatureBits: 256},
		Options{Algorithm: LSHBayesLSH, Threshold: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	ds := goldenDataset()
	for i := 0; i < ds.Len(); i++ {
		want, err := fresh.Query(ds.Vector(i), QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := ix.Query(ds.Vector(i), QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		requireSameMatches(t, [][]Match{got}, [][]Match{want})
	}
}

// resealV3 forges a structurally self-consistent v3 image out of
// mutated bytes: valid magic and version, then every in-bounds
// section checksum and finally the header checksum recomputed — the
// shape a deliberate attacker would produce, which drives the fuzzer
// past the CRC gates into the deep structural validators.
func resealV3(data []byte) []byte {
	const (
		headerFixed = 16 // magic, version, section count
		entrySize   = 32
		pageSize    = 4096
	)
	sealed := append([]byte{}, data...)
	copy(sealed, diskidx.Magic)
	binary.LittleEndian.PutUint32(sealed[len(diskidx.Magic):], diskidx.Version)
	n := int(binary.LittleEndian.Uint32(sealed[len(diskidx.Magic)+4:]))
	end := headerFixed + n*entrySize
	if n < 0 || n > 127 || end+4 > len(sealed) || end+4 > pageSize {
		return sealed
	}
	for i := 0; i < n; i++ {
		e := sealed[headerFixed+i*entrySize:]
		off := binary.LittleEndian.Uint64(e[8:])
		ln := binary.LittleEndian.Uint64(e[16:])
		if off <= uint64(len(sealed)) && ln <= uint64(len(sealed))-off {
			binary.LittleEndian.PutUint32(e[24:], snapshot.Checksum(sealed[off:off+ln]))
		}
	}
	binary.LittleEndian.PutUint32(sealed[end:], snapshot.Checksum(sealed[:end]))
	return sealed
}

// FuzzOpenIndexFile fuzzes the disk-snapshot open path: any byte
// string may fail to open but must never panic, and whatever does
// open must serve queries — or fail them with a typed error — without
// panicking. Mutations are additionally resealed with valid checksums
// so the structural validators behind the CRC gates stay fuzzed.
func FuzzOpenIndexFile(f *testing.F) {
	ds := NewDataset(16)
	ds.Add(map[uint32]float64{1: 0.8, 3: 0.6})
	ds.Add(map[uint32]float64{1: 0.6, 3: 0.8})
	ds.Add(map[uint32]float64{2: 1})
	ds.Normalize()
	ix, err := NewIndex(ds, Cosine, EngineConfig{Seed: 1, SignatureBits: 128},
		Options{Algorithm: AllPairsBayesLSH, Threshold: 0.6})
	if err != nil {
		f.Fatal(err)
	}
	seedPath := filepath.Join(f.TempDir(), "seed.v3.snap")
	if err := ix.SaveFileV3(seedPath); err != nil {
		f.Fatal(err)
	}
	good, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add(good[:4100])
	f.Add([]byte(diskidx.Magic))

	serve := func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.snap")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		opened, err := OpenIndexFile(path)
		if err != nil {
			return
		}
		defer opened.Close()
		if _, err := opened.Query(ds.Vector(0), QueryOptions{}); err != nil {
			t.Logf("query on opened index: %v", err)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		serve(t, data)
		if len(data) >= 4096 {
			serve(t, resealV3(data))
		}
	})
}
