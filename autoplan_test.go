package bayeslsh_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"bayeslsh"
	"bayeslsh/internal/harness"
	"bayeslsh/internal/planner"
)

// The AutoPipeline acceptance suite: the planner's enum mirror stays
// in lockstep with the root package, an auto-planned search or index
// is bit-identical to one configured explicitly with the pipeline the
// planner chose — per measure × corpus profile — and the collected
// corpus statistics survive every snapshot format.

// planCell is one measure × threshold cell of the planner matrix.
var planCells = []struct {
	measure   bayeslsh.Measure
	threshold float64
}{
	{bayeslsh.Cosine, 0.6},
	{bayeslsh.Jaccard, 0.5},
	{bayeslsh.BinaryCosine, 0.6},
}

// TestPlannerEnumsMirror pins the value-for-value mirror between the
// root enums and internal/planner's: the planner package cannot
// import the root (the root imports it), so it redeclares Measure and
// Pipeline — this test is what makes that duplication safe to evolve.
func TestPlannerEnumsMirror(t *testing.T) {
	for a := bayeslsh.BruteForce; a <= bayeslsh.PPJoin; a++ {
		if got, want := planner.Pipeline(a).String(), a.String(); got != want {
			t.Errorf("planner.Pipeline(%d) = %q, root Algorithm %q", int(a), got, want)
		}
	}
	for m := bayeslsh.Cosine; m <= bayeslsh.BinaryCosine; m++ {
		if got, want := planner.Measure(m).String(), m.String(); got != want {
			t.Errorf("planner.Measure(%d) = %q, root Measure %q", int(m), got, want)
		}
	}
}

// resultsEqual compares self-join outputs exactly: same pairs in the
// same order with float64-identical similarities — the determinism
// contract two engines built from the same dataset and seed share.
func resultsEqual(a, b []bayeslsh.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAutoPipelineBitIdentical is the tentpole acceptance matrix:
// for every corpus profile × measure, a search with AutoPipeline set
// returns byte-for-byte what an explicitly-configured search with the
// planner's chosen pipeline returns, and Output.Algorithm reports the
// choice.
func TestAutoPipelineBitIdentical(t *testing.T) {
	for _, p := range harness.Profiles() {
		for _, cell := range planCells {
			t.Run(fmt.Sprintf("%s/%v", p.Name, cell.measure), func(t *testing.T) {
				ds := harness.ProfileDataset(t, p, cell.measure)
				plan := bayeslsh.ChoosePlan(ds.CorpusStats(), bayeslsh.PlanQuery{
					Measure: cell.measure, Threshold: cell.threshold,
				})
				if len(plan.Rules) == 0 {
					t.Fatal("ChoosePlan returned no rules")
				}
				chosen := bayeslsh.Algorithm(plan.Pipeline)

				cfg := bayeslsh.EngineConfig{Seed: 7, Parallelism: 2}
				engAuto, err := bayeslsh.NewEngine(ds, cell.measure, cfg)
				if err != nil {
					t.Fatal(err)
				}
				engExp, err := bayeslsh.NewEngine(ds, cell.measure, cfg)
				if err != nil {
					t.Fatal(err)
				}

				outAuto, err := engAuto.Search(bayeslsh.Options{
					AutoPipeline: true, Threshold: cell.threshold,
				})
				if err != nil {
					t.Fatalf("auto search: %v", err)
				}
				if outAuto.Algorithm != chosen {
					t.Fatalf("auto search ran %v, ChoosePlan says %v", outAuto.Algorithm, chosen)
				}
				outExp, err := engExp.Search(bayeslsh.Options{
					Algorithm: chosen, Threshold: cell.threshold,
				})
				if err != nil {
					t.Fatalf("explicit search: %v", err)
				}
				if !resultsEqual(outAuto.Results, outExp.Results) {
					t.Fatalf("auto (%d pairs) != explicit (%d pairs) for %v",
						len(outAuto.Results), len(outExp.Results), chosen)
				}
				if len(outAuto.Results) == 0 {
					t.Fatal("profile corpus produced no pairs; the cell proves nothing")
				}
			})
		}
	}
}

// TestAutoPipelineIndexAndLive extends the bit-identity contract to
// the serving builds: NewIndex and NewLiveIndex with AutoPipeline
// answer queries exactly as their explicitly-configured twins, report
// the plan with its rules, and never re-plan across a live merge.
func TestAutoPipelineIndexAndLive(t *testing.T) {
	for _, cell := range planCells {
		t.Run(cell.measure.String(), func(t *testing.T) {
			p := harness.Profiles()[1] // skewed: exercises the length/skew rules
			ds := harness.ProfileDataset(t, p, cell.measure)
			plan := bayeslsh.ChoosePlan(ds.CorpusStats(), bayeslsh.PlanQuery{
				Measure: cell.measure, Threshold: cell.threshold, Serving: true,
			})
			chosen := bayeslsh.Algorithm(plan.Pipeline)
			cfg := bayeslsh.EngineConfig{Seed: 7, Parallelism: 2}

			auto, err := bayeslsh.NewIndex(ds, cell.measure, cfg, bayeslsh.Options{
				AutoPipeline: true, Threshold: cell.threshold,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := auto.Options().Algorithm; got != chosen {
				t.Fatalf("auto index built %v, ChoosePlan says %v", got, chosen)
			}
			if auto.Options().AutoPipeline {
				t.Fatal("resolved index options still carry AutoPipeline; merges would re-plan")
			}
			if got := auto.Plan(); got.Pipeline != plan.Pipeline || len(got.Rules) == 0 {
				t.Fatalf("index Plan = %+v, want pipeline %v with rules", got, plan.Pipeline)
			}
			if st := auto.CorpusStats(); st != ds.CorpusStats() {
				t.Fatalf("index CorpusStats %+v != dataset %+v", st, ds.CorpusStats())
			}

			explicit, err := bayeslsh.NewIndex(ds, cell.measure, cfg, bayeslsh.Options{
				Algorithm: chosen, Threshold: cell.threshold,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 8; i++ {
				q := ds.Vector(i * 13 % ds.Len())
				got, err := auto.Query(q, bayeslsh.QueryOptions{})
				if err != nil {
					t.Fatal(err)
				}
				want, err := explicit.Query(q, bayeslsh.QueryOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if !harness.MatchesEqual(got, want) {
					t.Fatalf("query %d: auto != explicit:\n got %v\nwant %v", i, got, want)
				}
			}

			// The live build: same contract, and the plan survives the
			// delta-merge path because the resolved options (not the
			// auto flag) are what mergeRun rebuilds from.
			lc := bayeslsh.LiveConfig{MaxDelta: 4, MaxRatio: -1}
			liveAuto, err := bayeslsh.NewLiveIndex(ds, cell.measure, cfg, bayeslsh.Options{
				AutoPipeline: true, Threshold: cell.threshold,
			}, lc)
			if err != nil {
				t.Fatal(err)
			}
			defer liveAuto.Close()
			liveExp, err := bayeslsh.NewLiveIndex(ds, cell.measure, cfg, bayeslsh.Options{
				Algorithm: chosen, Threshold: cell.threshold,
			}, lc)
			if err != nil {
				t.Fatal(err)
			}
			defer liveExp.Close()
			if got := liveAuto.Plan(); got.Pipeline != plan.Pipeline {
				t.Fatalf("live Plan pipeline %v, want %v", got.Pipeline, plan.Pipeline)
			}
			for i := 0; i < 6; i++ {
				v := ds.Vector(i)
				if _, err := liveAuto.Add(v); err != nil {
					t.Fatal(err)
				}
				if _, err := liveExp.Add(v); err != nil {
					t.Fatal(err)
				}
			}
			if err := liveAuto.Compact(); err != nil {
				t.Fatal(err)
			}
			if err := liveExp.Compact(); err != nil {
				t.Fatal(err)
			}
			if got := liveAuto.Options().Algorithm; got != chosen {
				t.Fatalf("post-merge live index runs %v, want %v", got, chosen)
			}
			for i := 0; i < 8; i++ {
				q := ds.Vector(i * 7 % ds.Len())
				got, err := liveAuto.Query(q, bayeslsh.QueryOptions{})
				if err != nil {
					t.Fatal(err)
				}
				want, err := liveExp.Query(q, bayeslsh.QueryOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if !harness.MatchesEqual(got, want) {
					t.Fatalf("post-merge query %d: auto != explicit", i)
				}
			}
		})
	}
}

// TestCorpusStatsSnapshotRoundTrip proves stats persistence across
// every snapshot format: the stats collected at build time come back
// from a v1 heap reload and a v3 disk open, and the recorded pipeline
// survives as the plan (rules don't persist — the decision does).
func TestCorpusStatsSnapshotRoundTrip(t *testing.T) {
	ds := harness.ProfileDataset(t, harness.Profiles()[0], bayeslsh.Cosine)
	cfg := bayeslsh.EngineConfig{Seed: 7, Parallelism: 2}
	ix, err := bayeslsh.NewIndex(ds, bayeslsh.Cosine, cfg, bayeslsh.Options{
		AutoPipeline: true, Threshold: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := ix.CorpusStats()
	if want.Zero() {
		t.Fatal("freshly built index has zero stats")
	}

	dir := t.TempDir()
	v1 := filepath.Join(dir, "ix.v1.snap")
	v3 := filepath.Join(dir, "ix.v3.snap")
	if err := ix.SaveFile(v1); err != nil {
		t.Fatal(err)
	}
	if err := ix.SaveFileV3(v3); err != nil {
		t.Fatal(err)
	}

	heap, err := bayeslsh.LoadFile(v1)
	if err != nil {
		t.Fatal(err)
	}
	if got := heap.CorpusStats(); got != want {
		t.Fatalf("v1 reload stats %+v != saved %+v", got, want)
	}
	if got := heap.Plan().Pipeline; got != ix.Plan().Pipeline {
		t.Fatalf("v1 reload plan %v != saved %v", got, ix.Plan().Pipeline)
	}

	disk, err := bayeslsh.OpenIndexFile(v3)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	if got := disk.CorpusStats(); got != want {
		t.Fatalf("v3 open stats %+v != saved %+v", got, want)
	}
	if got := disk.Plan().Pipeline; got != ix.Plan().Pipeline {
		t.Fatalf("v3 open plan %v != saved %v", got, ix.Plan().Pipeline)
	}

	// InspectFile sees the same stats without building an index.
	info, err := bayeslsh.InspectFile(v1)
	if err != nil {
		t.Fatal(err)
	}
	if info.Stats != want {
		t.Fatalf("InspectFile(v1) stats %+v != saved %+v", info.Stats, want)
	}
	info3, err := bayeslsh.InspectFile(v3)
	if err != nil {
		t.Fatal(err)
	}
	if info3.Stats != want {
		t.Fatalf("InspectFile(v3) stats %+v != saved %+v", info3.Stats, want)
	}
}
