// Benchmarks of the query-serving Index: single-query latency per
// pipeline and sharded batch throughput. Run with:
//
//	go test -bench Index -benchmem
//
// Build cost is excluded (paid once outside the loop); a reported
// iteration is one Query or one full QueryBatch. docs/QUERYING.md
// quotes the numbers from a reference run.
package bayeslsh_test

import (
	"testing"

	"bayeslsh"
)

// benchIndex builds an index over the synthetic RCV1 analogue.
func benchIndex(b *testing.B, m bayeslsh.Measure, opts bayeslsh.Options, parallelism int) (*bayeslsh.Index, *bayeslsh.Dataset) {
	b.Helper()
	ds, err := bayeslsh.Synthetic("RCV1-sim")
	if err != nil {
		b.Fatal(err)
	}
	if m == bayeslsh.Cosine {
		ds = ds.TfIdf().Normalize()
	} else {
		ds = ds.Binarize()
	}
	cfg := bayeslsh.EngineConfig{Seed: 42, Parallelism: parallelism}
	ix, err := bayeslsh.NewIndex(ds, m, cfg, opts)
	if err != nil {
		b.Fatal(err)
	}
	return ix, ds
}

// benchQueries runs one query per iteration, cycling through the
// corpus vectors so the lazy signature stores see a steady state.
func benchQueries(b *testing.B, ix *bayeslsh.Index, ds *bayeslsh.Dataset) {
	b.Helper()
	// Warm the lazy stores so iterations measure steady-state serving.
	if _, err := ix.Query(ds.Vector(0), bayeslsh.QueryOptions{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Query(ds.Vector(i%ds.Len()), bayeslsh.QueryOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexQueryLSHBayesCosine measures single-query latency of
// the LSH+BayesLSH pipeline under cosine at t = 0.7.
func BenchmarkIndexQueryLSHBayesCosine(b *testing.B) {
	ix, ds := benchIndex(b, bayeslsh.Cosine,
		bayeslsh.Options{Algorithm: bayeslsh.LSHBayesLSH, Threshold: 0.7}, 1)
	benchQueries(b, ix, ds)
}

// BenchmarkIndexQueryLSHLiteCosine measures single-query latency of
// LSH+BayesLSH-Lite (exact similarities) under cosine at t = 0.7.
func BenchmarkIndexQueryLSHLiteCosine(b *testing.B) {
	ix, ds := benchIndex(b, bayeslsh.Cosine,
		bayeslsh.Options{Algorithm: bayeslsh.LSHBayesLSHLite, Threshold: 0.7}, 1)
	benchQueries(b, ix, ds)
}

// BenchmarkIndexQueryAPLiteJaccard measures single-query latency of
// AP+BayesLSH-Lite under Jaccard at t = 0.5.
func BenchmarkIndexQueryAPLiteJaccard(b *testing.B) {
	ix, ds := benchIndex(b, bayeslsh.Jaccard,
		bayeslsh.Options{Algorithm: bayeslsh.AllPairsBayesLSHLite, Threshold: 0.5}, 1)
	benchQueries(b, ix, ds)
}

// BenchmarkIndexQueryBatch measures sharded batch throughput: one
// iteration answers every corpus vector as a query through
// QueryBatch at the engine's default parallelism.
func BenchmarkIndexQueryBatch(b *testing.B) {
	ix, ds := benchIndex(b, bayeslsh.Cosine,
		bayeslsh.Options{Algorithm: bayeslsh.LSHBayesLSH, Threshold: 0.7}, 0)
	queries := make([]bayeslsh.Vec, ds.Len())
	for i := range queries {
		queries[i] = ds.Vector(i)
	}
	if _, err := ix.QueryBatch(queries[:8], bayeslsh.QueryOptions{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.QueryBatch(queries, bayeslsh.QueryOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(queries))*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}
