package bayeslsh

import "fmt"

// Measure selects the similarity function of the search.
type Measure int

const (
	// Cosine is weighted cosine similarity over real-valued vectors
	// (vectors should be unit-normalized, e.g. via Dataset.Normalize).
	Cosine Measure = iota
	// Jaccard is the set Jaccard similarity of the feature index sets.
	Jaccard
	// BinaryCosine is cosine similarity over binarized vectors.
	BinaryCosine
)

// String implements fmt.Stringer.
func (m Measure) String() string {
	switch m {
	case Cosine:
		return "cosine"
	case Jaccard:
		return "jaccard"
	case BinaryCosine:
		return "binary-cosine"
	default:
		return fmt.Sprintf("Measure(%d)", int(m))
	}
}

// Algorithm selects a full search pipeline (candidate generation +
// verification), mirroring the eight methods compared in §5.1 of the
// paper.
type Algorithm int

const (
	// BruteForce exactly compares all O(n²) pairs. Ground truth.
	BruteForce Algorithm = iota
	// AllPairs is the exact algorithm of Bayardo et al. (WWW'07).
	AllPairs
	// AllPairsBayesLSH feeds AllPairs candidates to BayesLSH.
	AllPairsBayesLSH
	// AllPairsBayesLSHLite feeds AllPairs candidates to BayesLSH-Lite.
	AllPairsBayesLSHLite
	// LSH generates candidates by LSH banding and verifies exactly.
	LSH
	// LSHApprox generates candidates by LSH banding and estimates
	// similarities with the classical fixed-n maximum likelihood
	// estimator (§3 of the paper).
	LSHApprox
	// LSHBayesLSH feeds LSH candidates to BayesLSH.
	LSHBayesLSH
	// LSHBayesLSHLite feeds LSH candidates to BayesLSH-Lite.
	LSHBayesLSHLite
	// PPJoin is the exact prefix-filtering algorithm of Xiao et al.
	// (WWW'08); binary measures only.
	PPJoin
)

var algorithmNames = map[Algorithm]string{
	BruteForce:           "BruteForce",
	AllPairs:             "AllPairs",
	AllPairsBayesLSH:     "AP+BayesLSH",
	AllPairsBayesLSHLite: "AP+BayesLSH-Lite",
	LSH:                  "LSH",
	LSHApprox:            "LSH Approx",
	LSHBayesLSH:          "LSH+BayesLSH",
	LSHBayesLSHLite:      "LSH+BayesLSH-Lite",
	PPJoin:               "PPJoin",
}

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	if s, ok := algorithmNames[a]; ok {
		return s
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Algorithms returns all pipelines applicable to the measure, in the
// paper's presentation order.
func Algorithms(m Measure) []Algorithm {
	as := []Algorithm{
		AllPairs, AllPairsBayesLSH, AllPairsBayesLSHLite,
		LSH, LSHApprox, LSHBayesLSH, LSHBayesLSHLite,
	}
	if m == Jaccard || m == BinaryCosine {
		as = append(as, PPJoin)
	}
	return as
}

// UsesBayes reports whether the pipeline includes a BayesLSH or
// BayesLSH-Lite verification stage.
func (a Algorithm) UsesBayes() bool {
	switch a {
	case AllPairsBayesLSH, AllPairsBayesLSHLite, LSHBayesLSH, LSHBayesLSHLite:
		return true
	}
	return false
}

// Result is one output pair: the dataset ids of the two vectors and
// the reported similarity (exact or estimated, depending on the
// pipeline).
type Result struct {
	A, B int
	Sim  float64
}
