// Command quickstart is the quickstart walkthrough: find all pairs of documents with cosine similarity at
// least 0.7 in a small synthetic corpus, using the LSH+BayesLSH
// pipeline, and compare against the exact AllPairs baseline.
package main

import (
	"fmt"
	"log"

	"bayeslsh"
)

func main() {
	// 1. Load a corpus. Synthetic gives a scaled-down analogue of the
	// paper's RCV1 text collection; real applications build datasets
	// with NewDataset + Add.
	ds, err := bayeslsh.Synthetic("RCV1-sim")
	if err != nil {
		log.Fatal(err)
	}
	// 2. Preprocess the way the paper does: Tf-Idf weights, unit norm.
	ds = ds.TfIdf().Normalize()
	st := ds.Stats()
	fmt.Printf("corpus: %d vectors, %d dims, avg length %.0f\n", st.Vectors, st.Dim, st.AvgLen)

	// 3. Build an engine for cosine similarity.
	eng, err := bayeslsh.NewEngine(ds, bayeslsh.Cosine, bayeslsh.EngineConfig{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Search with BayesLSH verification on LSH candidates. ε, δ, γ
	// default to the paper's settings (0.03, 0.05, 0.03).
	out, err := eng.Search(bayeslsh.Options{
		Algorithm: bayeslsh.LSHBayesLSH,
		Threshold: 0.7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LSH+BayesLSH: %d pairs, %d candidates (%d pruned), total %v\n",
		len(out.Results), out.Candidates, out.Pruned, out.Total.Round(1e6))

	// 5. Sanity-check against the exact baseline.
	ref, err := eng.Search(bayeslsh.Options{
		Algorithm: bayeslsh.AllPairs,
		Threshold: 0.7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AllPairs (exact): %d pairs, total %v\n", len(ref.Results), ref.Total.Round(1e6))

	// 6. Show the highest-similarity estimates.
	best := out.Results
	for i := 0; i < len(best) && i < 5; i++ {
		r := best[i]
		fmt.Printf("  pair (%d, %d): estimated %.3f, exact %.3f\n",
			r.A, r.B, r.Sim, ds.Similarity(bayeslsh.Cosine, r.A, r.B))
	}
}
