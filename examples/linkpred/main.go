// Command linkpred demonstrates link prediction and friend recommendation: treat each node of a
// social graph as the Tf-Idf-weighted vector of its neighbors and
// find node pairs with high cosine similarity — pairs that share many
// (rare) neighbors are the classic candidates for a missing link.
// This mirrors the paper's Orkut and Twitter experiments.
package main

import (
	"fmt"
	"log"
	"sort"

	"bayeslsh"
)

func main() {
	// The built-in Orkut analogue: a preferential-attachment graph
	// with planted communities, each node a weighted adjacency row.
	ds, err := bayeslsh.Synthetic("Orkut-sim")
	if err != nil {
		log.Fatal(err)
	}
	ds = ds.TfIdf().Normalize()
	st := ds.Stats()
	fmt.Printf("graph: %d nodes, avg degree %.1f\n", st.Vectors, st.AvgLen)

	eng, err := bayeslsh.NewEngine(ds, bayeslsh.Cosine, bayeslsh.EngineConfig{Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	// On graphs, AllPairs is the strong candidate generator (the
	// paper's Figure 3(d)-(e)); BayesLSH-Lite keeps similarities exact.
	out, err := eng.Search(bayeslsh.Options{
		Algorithm: bayeslsh.AllPairsBayesLSHLite,
		Threshold: 0.6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found %d strongly-overlapping node pairs (cosine >= 0.6) in %v\n",
		len(out.Results), out.Total.Round(1e6))
	fmt.Printf("candidates %d, pruned by BayesLSH %d, exact verifications %d\n",
		out.Candidates, out.Pruned, out.ExactVerified)

	// Rank recommendations per node by similarity.
	sort.Slice(out.Results, func(i, j int) bool { return out.Results[i].Sim > out.Results[j].Sim })
	fmt.Println("top recommendations (node pairs most likely to be linked):")
	for i := 0; i < len(out.Results) && i < 5; i++ {
		r := out.Results[i]
		fmt.Printf("  recommend %d <-> %d (neighbor-profile cosine %.3f)\n", r.A, r.B, r.Sim)
	}
}
