// Command tuning demonstrates the paper's §5.3 claim that BayesLSH's three
// parameters trade quality for speed in an intuitive, monotone way —
// sweep ε (recall), δ and γ (accuracy) one at a time and report the
// resulting recall, estimation error and running time against exact
// ground truth.
package main

import (
	"fmt"
	"log"
	"math"

	"bayeslsh"
)

func main() {
	ds, err := bayeslsh.Synthetic("WikiWords100K-sim")
	if err != nil {
		log.Fatal(err)
	}
	ds = ds.TfIdf().Normalize()
	const t = 0.7

	// A fresh engine per run makes every sweep point pay its own
	// hashing, so the reported times are comparable.
	newEngine := func() *bayeslsh.Engine {
		eng, err := bayeslsh.NewEngine(ds, bayeslsh.Cosine, bayeslsh.EngineConfig{Seed: 5})
		if err != nil {
			log.Fatal(err)
		}
		return eng
	}

	truth, err := newEngine().Search(bayeslsh.Options{Algorithm: bayeslsh.AllPairs, Threshold: t})
	if err != nil {
		log.Fatal(err)
	}
	truthSet := map[[2]int]bool{}
	for _, r := range truth.Results {
		truthSet[[2]int{r.A, r.B}] = true
	}
	fmt.Printf("ground truth at t=%.1f: %d pairs\n\n", t, len(truth.Results))

	run := func(eps, delta, gamma float64) (recall, errFrac float64, out *bayeslsh.Output) {
		out, err := newEngine().Search(bayeslsh.Options{
			Algorithm: bayeslsh.LSHBayesLSH, Threshold: t,
			Epsilon: eps, Delta: delta, Gamma: gamma,
		})
		if err != nil {
			log.Fatal(err)
		}
		hit, bad := 0, 0
		for _, r := range out.Results {
			a, b := r.A, r.B
			if a > b {
				a, b = b, a
			}
			if truthSet[[2]int{a, b}] {
				hit++
			}
			if math.Abs(ds.Similarity(bayeslsh.Cosine, r.A, r.B)-r.Sim) > 0.05 {
				bad++
			}
		}
		recall = float64(hit) / float64(len(truth.Results))
		if len(out.Results) > 0 {
			errFrac = float64(bad) / float64(len(out.Results))
		}
		return recall, errFrac, out
	}

	fmt.Println("sweep epsilon (recall knob); delta=gamma=0.05:")
	for _, eps := range []float64{0.01, 0.05, 0.09} {
		rec, _, out := run(eps, 0.05, 0.05)
		fmt.Printf("  eps=%.2f  recall=%.2f%%  verify=%v\n", eps, 100*rec, out.VerifyTime.Round(1e6))
	}
	fmt.Println("sweep gamma (estimate-confidence knob); eps=delta=0.05:")
	for _, gamma := range []float64{0.01, 0.05, 0.09} {
		_, ef, out := run(0.05, 0.05, gamma)
		fmt.Printf("  gamma=%.2f  errors>0.05: %.1f%%  verify=%v\n", gamma, 100*ef, out.VerifyTime.Round(1e6))
	}
	fmt.Println("sweep delta (estimate-width knob); eps=gamma=0.05:")
	for _, delta := range []float64{0.02, 0.05, 0.09} {
		_, _, out := run(0.05, delta, 0.05)
		fmt.Printf("  delta=%.2f  hashes compared=%d  verify=%v\n",
			delta, out.HashesCompared, out.VerifyTime.Round(1e6))
	}
	fmt.Println("\nsmaller eps -> higher recall; smaller gamma/delta -> more accurate")
	fmt.Println("estimates at the cost of more hash comparisons — no manual tuning of")
	fmt.Println("the number of hashes anywhere.")
}
