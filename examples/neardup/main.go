// Command neardup demonstrates near-duplicate detection: shingle a collection of short texts into
// binary sets and find near-duplicates with Jaccard similarity — the
// web-crawling use case that motivates the paper's Jaccard
// experiments. Uses AP+BayesLSH-Lite, so the reported similarities
// are exact.
package main

import (
	"fmt"
	"hash/fnv"
	"log"
	"strings"

	"bayeslsh"
)

// shingle maps text to the set of hashed word 3-grams.
func shingle(text string, dim uint32) []uint32 {
	words := strings.Fields(strings.ToLower(text))
	var out []uint32
	for i := 0; i+3 <= len(words); i++ {
		h := fnv.New32a()
		h.Write([]byte(strings.Join(words[i:i+3], " ")))
		out = append(out, h.Sum32()%dim)
	}
	if len(out) == 0 && len(words) > 0 { // very short text: unigrams
		for _, w := range words {
			h := fnv.New32a()
			h.Write([]byte(w))
			out = append(out, h.Sum32()%dim)
		}
	}
	return out
}

func main() {
	docs := []string{
		"the quick brown fox jumps over the lazy dog near the river bank",
		"the quick brown fox jumps over the lazy dog near the river shore", // near-dup of 0
		"a completely different sentence about database systems and indexing",
		"the quick brown fox jumps over the lazy dog near the river bank", // exact dup of 0
		"bayesian inference lets us prune candidate pairs after a few hashes",
		"bayesian inference lets us prune candidate pairs after a few hash comparisons", // near-dup of 4
		"similarity search over sparse vectors with locality sensitive hashing",
		"an unrelated note on cooking pasta with garlic olive oil and chili",
	}
	// Pad the corpus with noise documents so candidate generation has
	// something to prune.
	for i := 0; i < 500; i++ {
		docs = append(docs, fmt.Sprintf(
			"noise document number %d mentions topic %d and topic %d with filler words %d %d",
			i, i%17, (i*7)%23, i*3, i*5))
	}

	const dim = 1 << 16
	ds := bayeslsh.NewDataset(dim)
	for _, d := range docs {
		ds.AddSet(shingle(d, dim))
	}

	eng, err := bayeslsh.NewEngine(ds, bayeslsh.Jaccard, bayeslsh.EngineConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	out, err := eng.Search(bayeslsh.Options{
		Algorithm: bayeslsh.AllPairsBayesLSHLite,
		Threshold: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scanned %d documents: %d near-duplicate pairs (J >= 0.5), %d candidates, %d pruned by BayesLSH\n",
		len(docs), len(out.Results), out.Candidates, out.Pruned)
	for _, r := range out.Results {
		if r.A < 8 || r.B < 8 { // show the interesting, hand-written pairs
			fmt.Printf("  J=%.2f  #%d ~ #%d\n    %q\n    %q\n", r.Sim, r.A, r.B, docs[r.A], docs[r.B])
		}
	}
}
