// Command querying is the query-serving walkthrough: build an index
// once over a corpus, then answer point queries — "which stored
// vectors are
// similar to this one?" — without recomputing the all-pairs join.
// Demonstrates threshold queries, out-of-corpus queries, top-k
// ranking, and sharded batch querying. See docs/QUERYING.md for the
// full guide.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"bayeslsh"
)

func main() {
	// 1. Load and preprocess a corpus exactly as for a batch search.
	ds, err := bayeslsh.Synthetic("RCV1-sim")
	if err != nil {
		log.Fatal(err)
	}
	ds = ds.TfIdf().Normalize()
	st := ds.Stats()
	fmt.Printf("corpus: %d vectors, %d dims, avg length %.0f\n", st.Vectors, st.Dim, st.AvgLen)

	// 2. Build the index once. Options select the candidate source and
	// verification exactly as for Engine.Search; here LSH banding with
	// BayesLSH-Lite verification (exact similarities) at t = 0.7.
	ix, err := bayeslsh.NewIndex(ds, bayeslsh.Cosine, bayeslsh.EngineConfig{Seed: 42},
		bayeslsh.Options{Algorithm: bayeslsh.LSHBayesLSHLite, Threshold: 0.7})
	if err != nil {
		log.Fatal(err)
	}
	bst := ix.Stats()
	fmt.Printf("index: built in %v (%d tables of %d hashes)\n",
		bst.BuildTime.Round(time.Millisecond), bst.Tables, bst.BandK)

	// 3. Query with a corpus vector: returns the vector itself plus
	// exactly the partners the batch search would pair it with.
	ms, err := ix.Query(ds.Vector(0), bayeslsh.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query corpus[0]: %d matches at t=0.7\n", len(ms))
	for _, m := range ms {
		fmt.Printf("  id %d sim %.4f\n", m.ID, m.Sim)
	}

	// 4. Query with a vector that is NOT in the corpus. It is hashed
	// with the same seeds and verified against the prebuilt index.
	probe := bayeslsh.NewVec(map[uint32]float64{10: 0.6, 20: 1.1, 30: 0.4})
	ms, err = ix.Query(probe, bayeslsh.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("out-of-corpus probe: %d matches\n", len(ms))

	// 5. Top-k ranking: the k most similar among the index's
	// candidates, with exact similarities.
	top, err := ix.TopK(ds.Vector(1), 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-3 for corpus[1]:\n")
	for _, m := range top {
		fmt.Printf("  id %d sim %.4f\n", m.ID, m.Sim)
	}

	// 6. Batch querying shards over EngineConfig.Parallelism workers;
	// results are identical to one-at-a-time Query calls. The serving
	// calls all have ...Context forms — here the batch runs under a
	// deadline, the shape of a production request handler (see
	// docs/CONTEXTS.md).
	queries := make([]bayeslsh.Vec, 200)
	for i := range queries {
		queries[i] = ds.Vector(i)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	rs, err := ix.QueryBatchContext(ctx, queries, bayeslsh.QueryOptions{})
	if err != nil {
		log.Fatal(err) // wraps context.DeadlineExceeded if the budget ran out
	}
	elapsed := time.Since(start)
	total := 0
	for _, r := range rs {
		total += len(r)
	}
	fmt.Printf("batch: %d queries, %d matches in %v (%.0f queries/s)\n",
		len(queries), total, elapsed.Round(time.Millisecond),
		float64(len(queries))/elapsed.Seconds())
}
