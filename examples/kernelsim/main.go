// Command kernelsim demonstrates kernelized similarity search: the §6 future-work item of the
// BayesLSH paper — BayesLSH-Lite over kernelized LSH (KLSH) for a
// learned/non-linear similarity, here the Gaussian RBF kernel cosine.
// The collision law of KLSH hashes is calibrated empirically, pruning
// runs on hash evidence alone, and only survivors pay exact kernel
// evaluations.
//
// This example uses the internal kernel package directly since
// kernelized search is an extension beyond the public similarity API.
package main

import (
	"fmt"
	"log"

	"bayeslsh/internal/kernel"
	"bayeslsh/internal/rng"
	"bayeslsh/internal/vector"
)

func main() {
	const (
		dim        = 12
		clusters   = 6
		perCluster = 30
		threshold  = 0.8
	)
	kern := kernel.RBF{Gamma: 0.05}
	src := rng.New(77)
	c := &vector.Collection{Dim: dim}
	for cl := 0; cl < clusters; cl++ {
		var center []float64
		for d := 0; d < dim; d++ {
			center = append(center, float64(cl*4)+src.NormFloat64())
		}
		for i := 0; i < perCluster; i++ {
			var es []vector.Entry
			for d := 0; d < dim; d++ {
				es = append(es, vector.Entry{Ind: uint32(d), Val: center[d] + 0.6*src.NormFloat64()})
			}
			c.Vecs = append(c.Vecs, vector.New(es))
		}
	}
	n := len(c.Vecs)
	fmt.Printf("%d points, RBF kernel cosine threshold %.2f\n", n, threshold)

	// Build KLSH from a random base sample.
	base := make([]vector.Vector, 100)
	for i := range base {
		base[i] = c.Vecs[src.Intn(n)]
	}
	h, err := kernel.NewKLSH(kern, base, 1024, 24, 5)
	if err != nil {
		log.Fatal(err)
	}

	// Calibrate the collision law at the threshold and build the
	// verifier.
	rt := kernel.Calibrate(kern, h, c, threshold, 6)
	fmt.Printf("calibrated per-hash collision probability at t=%.2f: %.3f\n", threshold, rt)
	lite, err := kernel.NewLite(kern, h, h.SignatureAll(c), kernel.LiteParams{
		Threshold: threshold, RThreshold: rt, Epsilon: 0.02,
	})
	if err != nil {
		log.Fatal(err)
	}

	var cands [][2]int32
	for i := int32(0); i < int32(n); i++ {
		for j := i + 1; j < int32(n); j++ {
			cands = append(cands, [2]int32{i, j})
		}
	}
	out, pruned, exactCount := lite.Verify(c, cands)
	fmt.Printf("candidates %d → pruned %d from hash evidence, %d exact kernel verifications, %d pairs found\n",
		len(cands), pruned, exactCount, len(out))

	// Brute-force comparison: every pair needs an exact kernel cosine.
	truth := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if kernel.CosineSim(kern, c.Vecs[i], c.Vecs[j]) >= threshold {
				truth++
			}
		}
	}
	fmt.Printf("brute force finds %d pairs; recall %.2f%%; exact kernel work reduced %.1fx\n",
		truth, 100*float64(len(out))/float64(truth),
		float64(len(cands))/float64(exactCount))
}
