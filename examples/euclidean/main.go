// Command euclidean demonstrates Euclidean near-neighbor pruning: the §6 future-work item of the
// BayesLSH paper — a BayesLSH-Lite analogue for Euclidean distance
// with p-stable LSH. Given clustered points, the verifier prunes
// far-apart candidate pairs from a handful of hash comparisons and
// computes exact distances only for survivors.
//
// This example uses the internal l2lsh package directly since
// distance search is an extension beyond the public similarity API.
package main

import (
	"fmt"
	"log"

	"bayeslsh/internal/l2lsh"
	"bayeslsh/internal/rng"
	"bayeslsh/internal/vector"
)

func main() {
	const (
		dim        = 32
		clusters   = 5
		perCluster = 40
		radius     = 10.0
	)
	src := rng.New(2024)
	c := &vector.Collection{Dim: dim}
	for cl := 0; cl < clusters; cl++ {
		center := float64(cl) * 20
		for i := 0; i < perCluster; i++ {
			var es []vector.Entry
			for d := 0; d < dim; d++ {
				es = append(es, vector.Entry{Ind: uint32(d), Val: center + src.NormFloat64()})
			}
			c.Vecs = append(c.Vecs, vector.New(es))
		}
	}
	n := len(c.Vecs)
	fmt.Printf("%d points in %d clusters; neighbor radius %.0f\n", n, clusters, radius)

	fam := l2lsh.NewFamily(dim, 256, radius/2, 7)
	sigs := fam.SignatureAll(c)
	lite, err := l2lsh.NewLite(fam, sigs, l2lsh.LiteParams{Radius: radius, Epsilon: 0.02})
	if err != nil {
		log.Fatal(err)
	}

	// All pairs as candidates (a banded index would normally supply
	// these; the point here is the Bayesian pruning).
	var cands [][2]int32
	for i := int32(0); i < int32(n); i++ {
		for j := i + 1; j < int32(n); j++ {
			cands = append(cands, [2]int32{i, j})
		}
	}
	out, pruned, exact := lite.Verify(c, cands)
	fmt.Printf("candidates %d → pruned %d by hash evidence, %d exact distance computations, %d neighbor pairs\n",
		len(cands), pruned, exact, len(out))

	// Compare against brute force.
	truth := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if l2lsh.Distance(c.Vecs[i], c.Vecs[j]) <= radius {
				truth++
			}
		}
	}
	fmt.Printf("brute force finds %d pairs; recall %.2f%%; exact work reduced %.0fx\n",
		truth, 100*float64(len(out))/float64(truth),
		float64(len(cands))/float64(exact))
}
