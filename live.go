package bayeslsh

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bayeslsh/internal/allpairs"
	"bayeslsh/internal/core"
	"bayeslsh/internal/live"
	"bayeslsh/internal/lshindex"
	"bayeslsh/internal/minhash"
	"bayeslsh/internal/pair"
	"bayeslsh/internal/shard"
	"bayeslsh/internal/sighash"
	"bayeslsh/internal/stats"
	"bayeslsh/internal/vector"
)

// LiveIndex is the ingest-while-serving form of Index: it answers the
// same Query, TopK and QueryBatch calls (plus their Context forms)
// while Add and Delete mutate the corpus, with no downtime and no
// full rebuild on the caller's critical path. Build one with
// NewLiveIndex over a seed corpus, or wrap a prebuilt or
// snapshot-loaded Index with LiveFrom.
//
// Architecture (see docs/LIVE.md): an LSM-style generation list. The
// current generation pairs an immutable base segment — an ordinary
// Index — with a small mutable delta segment (the memtable) that
// receives new vectors, hashes them against the same seeded families,
// and maintains its own LSH buckets or AllPairs postings. Deletes set
// bits in a shared monotone tombstone set that masks both segments.
// A background merge folds the delta and the tombstoned vectors into
// a fresh base (built by the exact offline BuildIndex code path, with
// signatures adopted rather than re-hashed) and publishes it by an
// atomic epoch swap: in-flight queries finish on the generation they
// pinned, and the query hot path takes no lock beyond one atomic
// pointer load plus a read-lock on the delta tables.
//
// Determinism contract: after any interleaving of Add, Delete and
// merges, query results are bit-identical to a cold Index built with
// the same EngineConfig and Options over the equivalent corpus — the
// live vectors in ingestion order, compacted (ids map through the
// compaction; similarities match to the last bit). The one
// corpus-global quantity the contract forces the live index to
// maintain is the Jaccard Beta prior of the full-BayesLSH pipelines,
// which is refit through the cold-build code path on every mutation;
// see the Add documentation for the cost.
//
// A LiveIndex is safe for concurrent use: any number of queries may
// overlap each other, mutations, and merges. Mutations serialize among
// themselves. A query overlapping a mutation observes the corpus
// either before or after it — both valid linearizations.
type LiveIndex struct {
	measure Measure
	cfg     EngineConfig
	opts    Options // resolved
	policy  live.Policy
	dim     int // declared feature-space dimensionality, fixed for life

	// gen is the current generation; queries pin it with one atomic
	// load. tombs is shared by all generations: bits are only ever set
	// and ids are never reused, so for the pipelines without a
	// corpus-global prior, reading it live is a valid linearization
	// for any pinned generation (a delete is visible to every query
	// that starts after it, immediately). The prior-bearing pipelines
	// instead read the generation-pinned liveGen.dead set, so a
	// delete's mask and its refit prior publish atomically.
	gen   atomic.Pointer[liveGen]
	tombs *live.Tombstones

	// mu serializes mutations (Add, Delete, merge publish, snapshot
	// cuts). Queries never take it.
	mu        sync.Mutex
	dead      int // live-present tombstoned vectors
	liveCount int // vectors neither deleted nor compacted away
	closed    bool

	merger *shard.Coalescer

	// dvq caches the delta segment's Bayes verifier; see deltaVerifier.
	dvq atomic.Pointer[deltaVQCache]

	merges    atomic.Int64
	lastMerge atomic.Int64          // wall-clock ns of the last completed merge
	mergeErr  atomic.Pointer[error] // last merge failure; nil after a success
}

// liveGen is one immutable generation: everything a query needs,
// published as a unit. Mutations and merges copy-and-swap it; the
// memtable pointer is shared across copies (it is append-only, and
// memN bounds what each generation sees).
type liveGen struct {
	// epoch increments whenever per-candidate verification decisions
	// may change — a prior refit or a merge — and keys the delta
	// verifier cache.
	epoch   uint64
	base    *Index
	baseIDs []int // base row -> external id, strictly increasing
	mem     *live.Memtable
	start   int // external id of memtable slot 0
	memN    int // visible memtable prefix
	prior   stats.Beta

	// dead is the generation-pinned deletion mask of the prior-bearing
	// pipelines (nil otherwise; those read the shared tombstone set
	// live). It is copy-on-write: Delete publishes a new map together
	// with the refit prior, so a pinned query can never see a masked
	// corpus verified under the wrong prior.
	dead map[int]struct{}
}

// deleted reports whether external id ext is masked for queries
// pinned to this generation.
func (g *liveGen) deleted(tombs *live.Tombstones, ext int) bool {
	if g.dead != nil {
		_, ok := g.dead[ext]
		return ok
	}
	return tombs.Has(ext)
}

// nextID returns the external id the next Add will receive.
func (g *liveGen) nextID() int { return g.start + g.memN }

// LiveConfig sets the merge policy knobs of a live index; the zero
// value selects the defaults (see docs/TUNING.md).
type LiveConfig struct {
	// MaxDelta triggers a background merge once the delta segment
	// holds this many vectors. 0 selects the default 4096; negative
	// disables the size trigger.
	MaxDelta int
	// MaxRatio triggers a background merge once delta vectors plus
	// live tombstones exceed this fraction of the base size. 0 selects
	// the default 0.25; negative disables the ratio trigger.
	MaxRatio float64
}

// ErrLiveClosed reports a mutation against a closed live index.
// Queries keep working after Close; only Add and Delete are refused.
var ErrLiveClosed = errors.New("bayeslsh: live index is closed")

// ErrVecOutOfRange reports an Add whose vector has a feature index at
// or beyond the index's declared feature-space dimensionality — the
// same contract Dataset construction declares via NewDataset(dim).
var ErrVecOutOfRange = errors.New("bayeslsh: vector feature outside the index feature space")

// ErrVecNotNormalized reports an Add of a non-unit-norm or
// negatively-weighted vector into a cosine index whose AllPairs
// candidate structure requires unit-normalized, non-negative input —
// the same validation an offline AllPairs build applies, enforced at
// ingest so a background merge can never fail on a vector a query is
// already being served from.
var ErrVecNotNormalized = errors.New("bayeslsh: AllPairs cosine index requires unit-normalized, non-negatively weighted vectors")

// NewLiveIndex builds a live index: an offline base build over the
// seed dataset (exactly NewIndex), wrapped with an empty delta
// segment. The seed corpus must be non-empty (ErrEmptyDataset
// otherwise); its vectors receive external ids 0..ds.Len()-1 and
// every later Add continues the sequence. For Cosine the seed dataset
// and every added vector should be unit-normalized, the same contract
// as NewEngine.
func NewLiveIndex(ds *Dataset, m Measure, cfg EngineConfig, opts Options, lc LiveConfig) (*LiveIndex, error) {
	ix, err := NewIndex(ds, m, cfg, opts)
	if err != nil {
		return nil, err
	}
	return LiveFrom(ix, lc)
}

// LiveFrom wraps a prebuilt Index — fresh from BuildIndex or loaded
// from a snapshot — as the base segment of a new live index, without
// rebuilding anything. The Index must not be mutated through any
// other handle afterwards (its SetRuntime excepted, which is safe
// anywhere).
func LiveFrom(ix *Index, lc LiveConfig) (*LiveIndex, error) {
	if ix == nil {
		return nil, errors.New("bayeslsh: LiveFrom over a nil index")
	}
	ids := make([]int, ix.Len())
	for i := range ids {
		ids[i] = i
	}
	return newLiveOver(ix, lc, ids, ix.Len()), nil
}

// newLiveOver assembles a live index around a base: the shared
// constructor of NewLiveIndex/LiveFrom (identity ids) and the
// snapshot loader (persisted ids). The caller finishes initialization
// (memtable replay, tombstones) before sharing the index.
func newLiveOver(ix *Index, lc LiveConfig, baseIDs []int, start int) *LiveIndex {
	e := ix.engine()
	li := &LiveIndex{
		measure:   e.measure,
		cfg:       e.cfg,
		opts:      ix.opts,
		policy:    live.Policy{MaxDelta: lc.MaxDelta, MaxRatio: lc.MaxRatio}.WithDefaults(),
		dim:       e.ds.c.Dim,
		tombs:     live.NewTombstones(),
		liveCount: len(baseIDs),
	}
	gen := &liveGen{
		base:    ix,
		baseIDs: baseIDs,
		mem:     newMemtableFor(ix),
		start:   start,
		prior:   ix.prior,
	}
	if li.priorBearing() {
		gen.dead = map[int]struct{}{}
	}
	li.gen.Store(gen)
	li.merger = shard.NewCoalescer(li.mergeRun)
	return li
}

// newMemtableFor creates a delta segment matching the base's candidate
// structure: banded delta tables under the base tables' plan, an
// unfiltered delta posting index, or nothing (BruteForce).
func newMemtableFor(ix *Index) *live.Memtable {
	switch {
	case ix.ap != nil:
		return live.NewMemtable(nil, nil, allpairs.NewDelta())
	case ix.mins != nil:
		return live.NewMemtable(nil, lshindex.NewMinhashDelta(ix.mins.BandK(), ix.mins.Bands()), nil)
	case ix.bits != nil:
		return live.NewMemtable(lshindex.NewBitsDelta(ix.bits.BandK(), ix.bits.Bands(), ix.opts.MultiProbe), nil, nil)
	default:
		return live.NewMemtable(nil, nil, nil)
	}
}

// Measure returns the index's similarity measure.
func (li *LiveIndex) Measure() Measure { return li.measure }

// Threshold returns the similarity threshold the index serves at.
func (li *LiveIndex) Threshold() float64 { return li.opts.Threshold }

// Options returns the resolved search options.
func (li *LiveIndex) Options() Options { return li.opts }

// CorpusStats returns the planner's corpus statistics of the current
// base segment. A compaction rebuilds the base over the merged corpus,
// so the stats track the live corpus merge by merge.
func (li *LiveIndex) CorpusStats() CorpusStats { return li.gen.Load().base.CorpusStats() }

// Plan returns the base segment's pipeline decision (see Index.Plan).
func (li *LiveIndex) Plan() Plan { return li.gen.Load().base.Plan() }

// Dim returns the feature-space dimensionality the index was built
// over — the exclusive upper bound Add enforces on ingest features.
func (li *LiveIndex) Dim() int { return li.dim }

// Len returns the number of live vectors: ingested and not deleted.
func (li *LiveIndex) Len() int {
	li.mu.Lock()
	defer li.mu.Unlock()
	return li.liveCount
}

// LiveStats reports the segment shape and merge history.
type LiveStats struct {
	// Base and Delta are the vector counts of the two segments
	// (including tombstoned vectors not yet compacted away).
	Base, Delta int
	// Live is the number of servable vectors; Dead the number of
	// tombstoned vectors still occupying segment slots.
	Live, Dead int
	// NextID is the external id the next Add will return.
	NextID int
	// Merges counts completed background merges; LastMerge is the
	// wall-clock duration of the most recent one.
	Merges    int64
	LastMerge time.Duration
	// LastMergeErr is the failure of the most recent merge attempt,
	// nil after a success. A failed merge leaves the index serving its
	// previous generation — correct but uncompacted — and is retried
	// on the next policy trigger or Compact.
	LastMergeErr error
}

// Stats returns a consistent snapshot of the index shape.
func (li *LiveIndex) Stats() LiveStats {
	li.mu.Lock()
	gen := li.gen.Load()
	st := LiveStats{
		Base:   len(gen.baseIDs),
		Delta:  gen.memN,
		Live:   li.liveCount,
		Dead:   li.dead,
		NextID: gen.nextID(),
	}
	li.mu.Unlock()
	st.Merges = li.merges.Load()
	st.LastMerge = time.Duration(li.lastMerge.Load())
	if p := li.mergeErr.Load(); p != nil {
		st.LastMergeErr = *p
	}
	return st
}

// SetRuntime sets the runtime knobs — EngineConfig.Parallelism and
// BatchSize — under the Index.SetRuntime contract: safe against
// concurrent queries, results unchanged at every setting. The knobs
// also carry over to the engines future merges build.
func (li *LiveIndex) SetRuntime(parallelism, batchSize int) {
	li.mu.Lock()
	defer li.mu.Unlock()
	li.cfg.Parallelism = parallelism
	li.cfg.BatchSize = batchSize
	li.cfg = li.cfg.withDefaults()
	li.gen.Load().base.SetRuntime(parallelism, batchSize)
}

// Close stops the background merger, canceling any merge in flight
// and waiting for it to exit. Mutations after Close return
// ErrLiveClosed; queries keep serving the last published generation.
// Close is idempotent.
func (li *LiveIndex) Close() {
	li.mu.Lock()
	li.closed = true
	li.mu.Unlock()
	li.merger.Close()
}

// Compact runs a merge now and waits for it: the delta segment and
// every tombstoned vector are folded into a fresh base. A no-op when
// there is nothing to fold or the index is closed. Compact does not
// block queries or mutations (beyond the brief publish step) — it
// blocks only its caller. A non-nil error reports that the merge
// failed and the index is still serving its previous (uncompacted but
// correct) generation.
func (li *LiveIndex) Compact() error {
	li.mu.Lock()
	closed := li.closed
	li.mu.Unlock()
	if closed {
		return nil
	}
	li.merger.Trigger()
	li.merger.Quiesce()
	if p := li.mergeErr.Load(); p != nil {
		return *p
	}
	return nil
}

// Add ingests a vector, returning its permanent external id. The
// vector becomes visible to queries that start after Add returns; it
// is hashed once, at ingest, against the same seeded families as the
// base corpus, so results involving it are bit-identical to a cold
// build. Features must lie inside the feature space declared by the
// seed dataset (ErrVecOutOfRange otherwise — the same bound
// Dataset/NewDataset declares).
//
// Cost: hashing the one vector to the depths the built pipeline
// compares, plus an O(delta) structure insert — except under the
// full-BayesLSH Jaccard pipelines, whose corpus-wide Beta prior (§4.1
// of the paper) the determinism contract forces to be refit on every
// mutation: there each Add or Delete additionally pays one
// candidate-generation pass over the corpus (signatures are adopted,
// not re-hashed). Batch mutations or choose OneBitMinhash, the Lite
// cosine pipelines, or a non-Bayes pipeline when sustained ingest
// matters; see docs/LIVE.md.
func (li *LiveIndex) Add(q Vec) (int, error) {
	li.mu.Lock()
	defer li.mu.Unlock()
	if li.closed {
		return 0, ErrLiveClosed
	}
	if q.Len() > 0 && int(q.v.Ind[q.Len()-1]) >= li.dim {
		return 0, fmt.Errorf("%w: feature %d, feature space [0, %d)",
			ErrVecOutOfRange, q.v.Ind[q.Len()-1], li.dim)
	}
	gen := li.gen.Load()
	if li.measure == Cosine && gen.base.ap != nil && q.Len() > 0 {
		// Mirror the AllPairs build validation (its pruning bounds
		// assume unit-norm, non-negative vectors): rejecting here keeps
		// every ingested vector mergeable.
		if n := q.v.Norm(); math.Abs(n-1) > 1e-6 {
			return 0, fmt.Errorf("%w (norm %v)", ErrVecNotNormalized, n)
		}
		for _, w := range q.v.Val {
			if w < 0 {
				return 0, fmt.Errorf("%w (negative weight)", ErrVecNotNormalized)
			}
		}
	}
	ent := li.prepareEntry(gen.base, q)

	ng := *gen
	ng.memN = gen.memN + 1
	if li.priorBearing() {
		// Refit before appending so a (theoretical) failure leaves the
		// index exactly as it was.
		view := gen.mem.View(gen.memN)
		src := li.collect(gen, -1, view)
		prior, err := li.coldPrior(gen, src, view, &ent)
		if err != nil {
			return 0, err
		}
		if err := li.applyPrior(&ng, prior); err != nil {
			return 0, err
		}
	}
	slot := gen.mem.Append(ent)
	id := gen.start + slot
	li.liveCount++
	li.gen.Store(&ng)
	li.maybeMerge(&ng)
	return id, nil
}

// Delete removes the vector with the given external id from every
// future query's view, reporting whether it was present (false for
// ids never issued or already deleted). The vector's segment slot is
// reclaimed by the next merge; until then a tombstone masks it.
// Delete shares Add's prior-refit cost under the full-BayesLSH
// Jaccard pipelines.
func (li *LiveIndex) Delete(id int) bool {
	li.mu.Lock()
	defer li.mu.Unlock()
	if li.closed {
		return false
	}
	gen := li.gen.Load()
	if id < 0 || id >= gen.nextID() || li.tombs.Has(id) {
		return false
	}
	if li.priorBearing() {
		// The mask and the refit prior must become visible as one
		// generation: a query pinning either side of the swap sees a
		// consistent (corpus, prior) pair — before-delete or
		// after-delete, never a mix.
		ng := *gen
		nd := make(map[int]struct{}, len(gen.dead)+1)
		for k := range gen.dead {
			nd[k] = struct{}{}
		}
		nd[id] = struct{}{}
		ng.dead = nd
		if li.liveCount > 1 {
			view := gen.mem.View(gen.memN)
			src := li.collect(gen, id, view)
			prior, err := li.coldPrior(gen, src, view, nil)
			if err != nil {
				return false
			}
			if err := li.applyPrior(&ng, prior); err != nil {
				return false
			}
		}
		li.tombs.Set(id)
		li.dead++
		li.liveCount--
		li.gen.Store(&ng)
		li.maybeMerge(&ng)
		return true
	}
	li.tombs.Set(id)
	li.dead++
	li.liveCount--
	li.maybeMerge(gen)
	return true
}

// maybeMerge schedules a background merge when the policy says the
// delta or tombstone shadow has grown past its bounds. Called under
// mu; Trigger never blocks.
func (li *LiveIndex) maybeMerge(gen *liveGen) {
	if li.policy.Due(len(gen.baseIDs), gen.memN, li.dead) {
		li.merger.Trigger()
	}
}

// priorBearing reports whether the built pipeline's verification
// depends on the corpus-fitted Jaccard Beta prior — the one
// corpus-global quantity mutations must keep in sync (see Add).
func (li *LiveIndex) priorBearing() bool {
	switch li.opts.Algorithm {
	case AllPairsBayesLSH, AllPairsBayesLSHLite, LSHBayesLSH, LSHBayesLSHLite:
		return li.measure == Jaccard && !li.opts.OneBitMinhash
	}
	return false
}

// prepareEntry builds a memtable entry for q: the work representation
// the measure indexes and the signature prefixes the built pipeline
// compares, hashed by the base engine's seeded families to exactly
// the depths the base corpus is hashed to — the ingest-side half of
// the determinism contract.
func (li *LiveIndex) prepareEntry(ix *Index, q Vec) live.Entry {
	e := ix.engine()
	ent := live.Entry{Raw: q.v}
	if e.measure == Cosine {
		ent.Work = q.v
	} else {
		ent.Work = q.v.Binarize().Normalize()
	}
	if minD := max(ix.bandMin, ix.verifyMin); minD > 0 {
		ent.Min = e.minSigStore().Family().SignatureN(ent.Work, minD)
	}
	if ix.packOneBit {
		ent.One = minhash.PackOneBit(ent.Min)
	}
	if bitsD := max(ix.bandBits, ix.verifyBits); bitsD > 0 {
		ent.Bits = e.bitSigStore().Family().SignatureN(ent.Work, bitsD)
	}
	return ent
}

// compactSrc is a consistent cut of the live corpus in compacted
// (external-id) order: for each surviving vector, its raw form and
// where it came from — a base row or a memtable slot.
type compactSrc struct {
	vecs     []vector.Vector
	baseRows []int32 // source base row, -1 when from the memtable
	memSlots []int32 // source memtable slot, -1 when from the base
	extIDs   []int   // external id, strictly increasing
}

// collect enumerates the live vectors of a generation (skipping the
// external id skip, -1 for none) in external-id order. Called under
// mu, or from the merge worker against an immutable cut.
func (li *LiveIndex) collect(gen *liveGen, skip int, view live.View) compactSrc {
	var src compactSrc
	vecs := gen.base.engine().ds.c.Vecs
	for row, ext := range gen.baseIDs {
		if ext != skip && !li.tombs.Has(ext) {
			src.vecs = append(src.vecs, vecs[row])
			src.baseRows = append(src.baseRows, int32(row))
			src.memSlots = append(src.memSlots, -1)
			src.extIDs = append(src.extIDs, ext)
		}
	}
	for slot := 0; slot < len(view.Raw); slot++ {
		ext := gen.start + slot
		if ext != skip && !li.tombs.Has(ext) {
			src.vecs = append(src.vecs, view.Raw[slot])
			src.baseRows = append(src.baseRows, -1)
			src.memSlots = append(src.memSlots, int32(slot))
			src.extIDs = append(src.extIDs, ext)
		}
	}
	return src
}

// compactEngine builds an engine over the compacted corpus and adopts
// every already-computed signature prefix from the base stores and
// the memtable, so nothing is hashed twice. The engine is exactly
// what a cold NewEngine over the equivalent corpus constructs —
// adopted prefixes are bit-identical to what its lazy fills would
// compute, deeper demand resumes hashing where the prefix ends.
func (li *LiveIndex) compactEngine(cfg EngineConfig, gen *liveGen, src compactSrc, view live.View, extra *live.Entry) (*Engine, error) {
	// A disk-backed base's mapped bytes are dereferenced below (the
	// compacted collection aliases them; signature prefixes are adopted
	// from the mapped stores), so every persisted section must be
	// verified before the rebuild trusts a byte of it.
	if err := gen.base.readyAll(); err != nil {
		return nil, err
	}
	vecs := src.vecs
	if extra != nil {
		vecs = append(vecs[:len(vecs):len(vecs)], extra.Raw)
	}
	ds := &Dataset{c: &vector.Collection{Dim: li.dim, Vecs: vecs}}
	e2, err := NewEngine(ds, li.measure, cfg)
	if err != nil {
		return nil, err
	}
	be := gen.base.engine()
	if be.minStore != nil {
		st := e2.minSigStore()
		for i := range src.vecs {
			if r := src.baseRows[i]; r >= 0 {
				// Filled is monotone and the filled prefix immutable, so
				// reading it concurrently with query-driven fills is safe.
				st.Adopt(int32(i), be.minStore.Sigs()[r], be.minStore.FilledHashes(r))
			} else if s := src.memSlots[i]; len(view.Min[s]) > 0 {
				st.Adopt(int32(i), view.Min[s], len(view.Min[s]))
			}
		}
		if extra != nil && len(extra.Min) > 0 {
			st.Adopt(int32(len(vecs)-1), extra.Min, len(extra.Min))
		}
	}
	if be.bitStore != nil {
		st := e2.bitSigStore()
		for i := range src.vecs {
			if r := src.baseRows[i]; r >= 0 {
				st.Adopt(int32(i), be.bitStore.Sigs()[r], be.bitStore.FilledBits(r))
			} else if s := src.memSlots[i]; len(view.Bits[s]) > 0 {
				st.Adopt(int32(i), view.Bits[s], len(view.Bits[s])*64)
			}
		}
		if extra != nil && len(extra.Bits) > 0 {
			st.Adopt(int32(len(vecs)-1), extra.Bits, len(extra.Bits)*64)
		}
	}
	return e2, nil
}

// coldPrior computes the Jaccard Beta prior a cold build over the
// generation's live corpus (plus extra, the vector an Add is about to
// ingest) would fit: the same candidate enumeration, the same sort,
// the same sampling stream — so live verification prunes with exactly
// the prior a cold index over the equivalent corpus would use.
func (li *LiveIndex) coldPrior(gen *liveGen, src compactSrc, view live.View, extra *live.Entry) (stats.Beta, error) {
	// Called under mu, so reading li.cfg here is race-free.
	e2, err := li.compactEngine(li.cfg, gen, src, view, extra)
	if err != nil {
		return stats.Beta{}, err
	}
	cands, err := e2.candidates(context.Background(), li.opts)
	if err != nil {
		return stats.Beta{}, err
	}
	pair.SortPairs(cands)
	return e2.fitPrior(li.opts, cands), nil
}

// applyPrior installs a refit prior into the pending generation: a
// fresh base view whose verifier prunes with it, and a bumped epoch
// so the delta verifier is rebuilt to match. No-op when the prior is
// unchanged.
func (li *LiveIndex) applyPrior(ng *liveGen, prior stats.Beta) error {
	if prior == ng.prior {
		return nil
	}
	vq, err := ng.base.engine().bayesVerifierWithPrior(context.Background(), li.opts, prior)
	if err != nil {
		return err
	}
	ng.base = ng.base.withPrior(prior, vq)
	ng.prior = prior
	ng.epoch++
	return nil
}

// withPrior returns a view of the index that verifies with the given
// prior and verifier, sharing every other field — the live index's
// prior-refit path, which must not rebuild tables or re-hash
// anything.
func (ix *Index) withPrior(p stats.Beta, vq core.QueryVerifier) *Index {
	n := &Index{
		opts:       ix.opts,
		bits:       ix.bits,
		mins:       ix.mins,
		ap:         ix.ap,
		disk:       ix.disk,
		vq:         vq,
		prior:      p,
		bandBits:   ix.bandBits,
		verifyBits: ix.verifyBits,
		bandMin:    ix.bandMin,
		verifyMin:  ix.verifyMin,
		packOneBit: ix.packOneBit,
		approxN:    ix.approxN,
		stats:      ix.stats,
	}
	n.eng.Store(ix.engine())
	return n
}

// deltaVQCache is one constructed delta-segment verifier, valid for
// any generation on the same memtable and epoch whose visible prefix
// it covers (per-candidate decisions read only that candidate's
// signatures, so a verifier over a longer prefix serves older
// generations unchanged).
type deltaVQCache struct {
	mem   *live.Memtable
	epoch uint64
	n     int
	vq    core.QueryVerifier
}

// deltaVerifier returns the Bayes verifier for the generation's delta
// segment (nil when the pipeline verifies without one or the delta is
// empty), constructing it on first use per (memtable, epoch) and
// growing it as the visible prefix advances. Construction is cheap —
// a pruning-table computation over the already-known params and
// prior — and racing constructions build identical verifiers, so the
// cache is a plain atomic publish.
func (li *LiveIndex) deltaVerifier(gen *liveGen) (core.QueryVerifier, error) {
	if gen.base.vq == nil || gen.memN == 0 {
		return nil, nil
	}
	if c := li.dvq.Load(); c != nil && c.mem == gen.mem && c.epoch == gen.epoch && c.n >= gen.memN {
		return c.vq, nil
	}
	view := gen.mem.View(gen.memN)
	params := gen.base.vq.Params()
	params.Ensure = nil // delta signatures are hashed eagerly at ingest
	var (
		vq  core.QueryVerifier
		err error
	)
	if li.measure == Jaccard {
		if li.opts.OneBitMinhash {
			vq, err = core.NewOneBitJaccard(view.One, params.MaxHashes, params)
		} else {
			vq, err = core.NewJaccard(view.Min, gen.prior, params)
		}
	} else {
		vq, err = core.NewCosine(view.Bits, params.MaxHashes, params)
	}
	if err != nil {
		return nil, err
	}
	if li.gen.Load().mem == gen.mem {
		// Cache only for the current memtable: a query still pinned to
		// a pre-merge generation must not re-pin the retired segment's
		// memory past its own lifetime. A merge can still race between
		// the check and the store, so re-check afterwards and retract
		// our own entry (and only ours) if it lost.
		c := &deltaVQCache{mem: gen.mem, epoch: gen.epoch, n: gen.memN, vq: vq}
		li.dvq.Store(c)
		if li.gen.Load().mem != gen.mem {
			li.dvq.CompareAndSwap(c, nil)
		}
	}
	return vq, nil
}

// deltaSeg wraps the generation's delta segment in the verification
// surface Index.verifySeg runs — the same switch, the same
// per-candidate decisions as the base segment and as a cold index.
func (li *LiveIndex) deltaSeg(gen *liveGen, view live.View, vq core.QueryVerifier, qs querySigs) segView {
	em := toExactMeasure(li.measure)
	n := gen.base.approxN
	return segView{
		vq:  vq,
		sim: func(slot int32) float64 { return em.Sim(qs.raw, view.Raw[slot]) },
		est: func(slot int32) float64 {
			if li.measure == Jaccard {
				return approxJaccardEstimate(minhash.Matches(qs.min, view.Min[slot], 0, n), n)
			}
			return approxCosineEstimate(sighash.MatchCount(qs.bits, view.Bits[slot], 0, n), n)
		},
	}
}

// Query returns the live vectors similar to q at the index's
// threshold (or opts.Threshold, if higher), in ascending external-id
// order — bit-identical, modulo the id map, to a cold Index over the
// equivalent corpus. Query is QueryContext with context.Background().
func (li *LiveIndex) Query(q Vec, opts QueryOptions) ([]Match, error) {
	return li.QueryContext(context.Background(), q, opts)
}

// QueryContext is Query with cooperative cancellation, under the
// Index.QueryContext contract.
func (li *LiveIndex) QueryContext(ctx context.Context, q Vec, opts QueryOptions) ([]Match, error) {
	gen := li.gen.Load()
	t, err := gen.base.queryThreshold(opts)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, ctxWrap(err)
	}
	var stop *shard.Stopper
	if ctx.Done() != nil {
		stop = shard.NewStopper(ctx)
		defer stop.Close()
	}
	ms, err := li.queryStop(gen, q, t, stop)
	if err != nil {
		return nil, ctxWrap(err)
	}
	return ms, nil
}

// queryStop runs one threshold query against a pinned generation:
// both segments probed and verified with the built algorithm, the
// tombstone mask applied between candidate generation and
// verification, results mapped to external ids.
func (li *LiveIndex) queryStop(gen *liveGen, q Vec, t float64, stop *shard.Stopper) ([]Match, error) {
	if q.Len() == 0 {
		return nil, nil
	}
	ix := gen.base
	if err := ix.ready(false); err != nil {
		return nil, err
	}
	qs := ix.prepare(q, false)

	bids := li.filterBase(gen, ix.candidates(qs))
	bhits, err := ix.verify(qs, bids, stop)
	if err != nil {
		return nil, err
	}

	dids := li.filterDelta(gen, gen.mem.Candidates(qs.bits, qs.min, qs.work, gen.memN))
	var dhits []pair.Hit
	if len(dids) > 0 {
		vq, err := li.deltaVerifier(gen)
		if err != nil {
			return nil, err
		}
		view := gen.mem.View(gen.memN)
		dhits, err = ix.verifySeg(li.deltaSeg(gen, view, vq, qs), qs, dids, stop)
		if err != nil {
			return nil, err
		}
	}

	out := make([]Match, 0, len(bhits)+len(dhits))
	for _, h := range bhits {
		if t <= ix.opts.Threshold || h.Sim >= t {
			out = append(out, Match{ID: gen.baseIDs[h.ID], Sim: h.Sim})
		}
	}
	for _, h := range dhits {
		if t <= ix.opts.Threshold || h.Sim >= t {
			out = append(out, Match{ID: gen.start + int(h.ID), Sim: h.Sim})
		}
	}
	return out, nil
}

// filterBase drops deleted base candidates, in place.
func (li *LiveIndex) filterBase(gen *liveGen, ids []int32) []int32 {
	kept := ids[:0]
	for _, id := range ids {
		if !gen.deleted(li.tombs, gen.baseIDs[id]) {
			kept = append(kept, id)
		}
	}
	return kept
}

// filterDelta drops deleted delta candidates, in place.
func (li *LiveIndex) filterDelta(gen *liveGen, slots []int32) []int32 {
	kept := slots[:0]
	for _, s := range slots {
		if !gen.deleted(li.tombs, gen.start+int(s)) {
			kept = append(kept, s)
		}
	}
	return kept
}

// TopK returns the k live vectors most similar to q among the index's
// candidates, under the Index.TopK contract (exact similarities,
// candidates at the built threshold, k clamped to the corpus size).
func (li *LiveIndex) TopK(q Vec, k int) ([]Match, error) {
	return li.TopKContext(context.Background(), q, k)
}

// TopKContext is TopK with cooperative cancellation.
func (li *LiveIndex) TopKContext(ctx context.Context, q Vec, k int) ([]Match, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w (got %d)", ErrBadK, k)
	}
	if err := ctx.Err(); err != nil {
		return nil, ctxWrap(err)
	}
	if q.Len() == 0 {
		return nil, nil
	}
	var stop *shard.Stopper
	if ctx.Done() != nil {
		stop = shard.NewStopper(ctx)
		defer stop.Close()
	}
	gen := li.gen.Load()
	ix := gen.base
	if err := ix.ready(true); err != nil {
		return nil, err
	}
	qs := ix.prepare(q, true)
	em := toExactMeasure(li.measure)

	bids := li.filterBase(gen, ix.candidates(qs))
	dids := li.filterDelta(gen, gen.mem.Candidates(qs.bits, qs.min, qs.work, gen.memN))
	view := gen.mem.View(gen.memN)
	ms := make([]Match, 0, len(bids)+len(dids))
	for _, id := range bids {
		if stop.Stopped() {
			return nil, ctxWrap(stop.Err())
		}
		if s := ix.exactSim(qs.raw, id); s >= li.opts.Threshold {
			ms = append(ms, Match{ID: gen.baseIDs[id], Sim: s})
		}
	}
	for _, s := range dids {
		if stop.Stopped() {
			return nil, ctxWrap(stop.Err())
		}
		if sim := em.Sim(qs.raw, view.Raw[s]); sim >= li.opts.Threshold {
			ms = append(ms, Match{ID: gen.start + int(s), Sim: sim})
		}
	}
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Sim != ms[j].Sim {
			return ms[i].Sim > ms[j].Sim
		}
		return ms[i].ID < ms[j].ID
	})
	if len(ms) > k {
		ms = ms[:k]
	}
	return ms, nil
}

// QueryBatch answers many queries over one consistent generation,
// sharded over the runtime's worker count. Result i corresponds to
// queries[i]; every batch pins a single generation, so all its
// queries see the same corpus cut. (Under the pipelines without a
// corpus-global prior, deletes mask through the shared tombstone set
// rather than republishing, so a delete landing mid-batch linearizes
// per query; the prior-bearing pipelines republish on every mutation
// and their batches are fully pinned.)
func (li *LiveIndex) QueryBatch(queries []Vec, opts QueryOptions) ([][]Match, error) {
	return li.QueryBatchContext(context.Background(), queries, opts)
}

// QueryBatchContext is QueryBatch with cooperative cancellation,
// under the Index.QueryBatchContext contract (all-or-nothing).
func (li *LiveIndex) QueryBatchContext(ctx context.Context, queries []Vec, opts QueryOptions) ([][]Match, error) {
	gen := li.gen.Load()
	t, err := gen.base.queryThreshold(opts)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, ctxWrap(err)
	}
	// Surface a disk-backed base's first-touch verification failure as
	// the batch's error; inside the fan-out it would be swallowed.
	if err := gen.base.ready(false); err != nil {
		return nil, err
	}
	var stop *shard.Stopper
	if ctx.Done() != nil {
		stop = shard.NewStopper(ctx)
		defer stop.Close()
	}
	out := make([][]Match, len(queries))
	workers := gen.base.engine().workers()
	err = shard.RunCtx(ctx, len(queries), workers, shard.Chunk(len(queries), workers, 1), func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			if stop.Stopped() {
				return
			}
			out[i], _ = li.queryStop(gen, queries[i], t, stop)
		}
	})
	if err != nil {
		return nil, ctxWrap(err)
	}
	return out, nil
}

// mergeRun is the background merge: cut the current generation, build
// a fresh base over the compacted corpus through the offline
// BuildIndex code path (signatures adopted, prior carried over), and
// publish it as a new generation by atomic swap. Queries never block;
// mutations block only during the brief publish step. ctx is canceled
// by Close, aborting the build between pipeline stages.
func (li *LiveIndex) mergeRun(ctx context.Context) {
	start := time.Now()

	li.mu.Lock()
	if li.closed {
		li.mu.Unlock()
		return
	}
	gen := li.gen.Load()
	n := gen.memN
	if n == 0 && li.dead == 0 {
		// Healthy no-op: nothing to fold. Clear any stale failure so
		// Compact on a quiescent index reports success.
		li.mergeErr.Store(nil)
		li.mu.Unlock()
		return
	}
	view := gen.mem.View(n)
	src := li.collect(gen, -1, view)
	deadCut := len(gen.baseIDs) + n - len(src.vecs)
	cutPrior := gen.prior
	cfg := li.cfg
	li.mu.Unlock()

	if len(src.vecs) == 0 {
		// Every vector is deleted; there is no corpus to rebuild over.
		// Queries already serve empty results through the deletion
		// mask, so leave the segments for a future merge to reclaim.
		li.mergeErr.Store(nil)
		return
	}

	e2, err := li.compactEngine(cfg, gen, src, view, nil)
	if err != nil {
		li.mergeErr.Store(&err)
		return
	}
	var pb *stats.Beta
	if li.priorBearing() {
		// The maintained prior is, by the mutation-time refit, exactly
		// the cold prior of the cut corpus; passing it skips the
		// build's candidate re-enumeration.
		pb = &cutPrior
	}
	nb, err := e2.buildIndexCtx(ctx, li.opts, pb)
	if err != nil {
		// State unchanged — the previous generation keeps serving. A
		// cancellation is Close shutting the index down, not a merge
		// failure; only genuine failures are reported.
		if ctx.Err() == nil {
			li.mergeErr.Store(&err)
		}
		return
	}
	var present map[int]struct{}
	if li.priorBearing() {
		// Prebuilt outside the publish lock for the dead-mask rebuild.
		present = make(map[int]struct{}, len(src.extIDs))
		for _, ext := range src.extIDs {
			present[ext] = struct{}{}
		}
	}

	li.mu.Lock()
	if li.closed {
		li.mu.Unlock()
		return
	}
	cur := li.gen.Load()
	if li.priorBearing() && cur.prior != cutPrior {
		// Mutations during the build moved the corpus prior; re-arm the
		// new base's verifier with the current one (cheap — no
		// enumeration, just the pruning-table construction). Runs under
		// the merge ctx so Close aborts the publish like any other
		// merge stage.
		vq, err := e2.bayesVerifierWithPrior(ctx, li.opts, cur.prior)
		if err != nil {
			li.mu.Unlock()
			li.mergeErr.Store(&err)
			return
		}
		nb = nb.withPrior(cur.prior, vq)
	}
	fresh := newMemtableFor(nb)
	cv := cur.mem.View(cur.memN)
	for slot := n; slot < cur.memN; slot++ {
		fresh.Append(live.Entry{
			Raw: cv.Raw[slot], Work: cv.Work[slot],
			Min: cv.Min[slot], Bits: cv.Bits[slot], One: cv.One[slot],
		})
	}
	ng := &liveGen{
		epoch:   cur.epoch + 1,
		base:    nb,
		baseIDs: src.extIDs,
		mem:     fresh,
		start:   gen.start + n,
		memN:    cur.memN - n,
		prior:   cur.prior,
	}
	if cur.dead != nil {
		// Carry only the masks still shadowing a present vector: ids
		// compacted away by this merge need no mask (they are in no
		// segment), ids deleted during the merge keep theirs.
		nd := make(map[int]struct{}, len(cur.dead))
		for ext := range cur.dead {
			if _, ok := present[ext]; ok || ext >= ng.start {
				nd[ext] = struct{}{}
			}
		}
		ng.dead = nd
	}
	li.gen.Store(ng)
	// Drop the delta-verifier cache with the retired memtable so the
	// compacted segment's vectors and signatures become collectable.
	li.dvq.Store(nil)
	li.dead -= deadCut
	due := li.policy.Due(len(ng.baseIDs), ng.memN, li.dead)
	li.mu.Unlock()

	li.merges.Add(1)
	li.lastMerge.Store(int64(time.Since(start)))
	li.mergeErr.Store(nil)
	if due {
		li.merger.Trigger()
	}
}
