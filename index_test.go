package bayeslsh

import (
	"math"
	"sync"
	"testing"
)

// queryTestConfig describes one measure's cross-check setup, matching
// the thresholds and engine configs of the batch agreement tests.
type queryTestConfig struct {
	measure   Measure
	threshold float64
	cfg       EngineConfig
	prep      func(*Dataset) *Dataset
}

func queryTestConfigs() []queryTestConfig {
	return []queryTestConfig{
		{Cosine, 0.7, EngineConfig{Seed: 7, SignatureBits: 1024}, func(d *Dataset) *Dataset { return d.TfIdf().Normalize() }},
		{Jaccard, 0.4, EngineConfig{Seed: 8}, func(d *Dataset) *Dataset { return d.Binarize() }},
		{BinaryCosine, 0.7, EngineConfig{Seed: 9, SignatureBits: 1024}, func(d *Dataset) *Dataset { return d }},
	}
}

// batchPartners extracts, for every vector id, the partners and
// similarities the batch search reports for pairs involving it.
func batchPartners(out *Output, n int) []map[int]float64 {
	ps := make([]map[int]float64, n)
	for i := range ps {
		ps[i] = map[int]float64{}
	}
	for _, r := range out.Results {
		ps[r.A][r.B] = r.Sim
		ps[r.B][r.A] = r.Sim
	}
	return ps
}

// queryAlgorithms are the query-serving pipelines; every one of them
// is exactly consistent with the batch search (the AllPairs candidate
// test is symmetric in the pair, so even the estimate-reporting
// AllPairsBayesLSH pipeline agrees strictly — see docs/QUERYING.md).
func queryAlgorithms() []Algorithm {
	return []Algorithm{
		BruteForce, AllPairs, LSH, LSHApprox,
		LSHBayesLSH, LSHBayesLSHLite,
		AllPairsBayesLSH, AllPairsBayesLSHLite,
	}
}

// The full build-once/query-many consistency matrix lives in
// query_matrix_test.go (package bayeslsh_test), driven over the shared
// internal/harness grid; the tests below cover the option-dependent
// and concurrency paths that need package-internal access.

// TestQueryVariants exercises the option-dependent query paths that
// the main cross-check matrix skips: multi-probe banding and 1-bit
// minhash verification.
func TestQueryVariants(t *testing.T) {
	t.Run("multiprobe", func(t *testing.T) {
		ds := smallDataset(t, 300).TfIdf().Normalize()
		eng, err := NewEngine(ds, Cosine, EngineConfig{Seed: 7, SignatureBits: 1024})
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{Algorithm: LSHBayesLSHLite, Threshold: 0.7, MultiProbe: true}
		crossCheck(t, eng, ds, opts, 0)
	})
	t.Run("onebit", func(t *testing.T) {
		ds := smallDataset(t, 300).Binarize()
		eng, err := NewEngine(ds, Jaccard, EngineConfig{Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{Algorithm: LSHBayesLSH, Threshold: 0.4, OneBitMinhash: true}
		crossCheck(t, eng, ds, opts, 0)
	})
}

// crossCheck compares Query against Search for every dataset vector.
func crossCheck(t *testing.T, eng *Engine, ds *Dataset, opts Options, tol float64) {
	t.Helper()
	batch, err := eng.Search(opts)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := eng.BuildIndex(opts)
	if err != nil {
		t.Fatal(err)
	}
	partners := batchPartners(batch, ds.Len())
	for i := 0; i < ds.Len(); i++ {
		ms, err := ix.Query(ds.Vector(i), QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got := map[int]float64{}
		for _, m := range ms {
			if m.ID != i {
				got[m.ID] = m.Sim
			}
		}
		if len(got) != len(partners[i]) {
			t.Fatalf("query %d: %d partners, batch %d", i, len(got), len(partners[i]))
		}
		for id, ws := range partners[i] {
			if gs, ok := got[id]; !ok || math.Abs(gs-ws) > tol {
				t.Fatalf("query %d partner %d: got %v ok=%v, batch %v", i, id, got[id], ok, ws)
			}
		}
	}
}

// TestQueryDeterminism asserts the query path's determinism guarantee:
// identical results at any Parallelism and BatchSize for a fixed Seed,
// including under concurrent use of one index.
func TestQueryDeterminism(t *testing.T) {
	ds := smallDataset(t, 300).TfIdf().Normalize()
	opts := Options{Algorithm: LSHBayesLSH, Threshold: 0.7}
	queries := make([]Vec, ds.Len())
	for i := range queries {
		queries[i] = ds.Vector(i)
	}

	build := func(parallelism, batch int) *Index {
		ix, err := NewIndex(ds, Cosine, EngineConfig{Seed: 7, SignatureBits: 1024, Parallelism: parallelism, BatchSize: batch}, opts)
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	seq := build(1, 0)
	want, err := seq.QueryBatch(queries, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}

	for _, pc := range []struct{ p, b int }{{4, 0}, {4, 16}, {2, 1}} {
		got, err := build(pc.p, pc.b).QueryBatch(queries, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		requireSameMatches(t, got, want)
	}

	// Concurrent single queries against one shared index (exercises
	// the lazily filled signature stores under the race detector).
	ix := build(4, 0)
	got := make([][]Match, len(queries))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(queries); i += 8 {
				ms, err := ix.Query(queries[i], QueryOptions{})
				if err != nil {
					t.Error(err)
					return
				}
				got[i] = ms
			}
		}(w)
	}
	wg.Wait()
	requireSameMatches(t, got, want)
}

func requireSameMatches(t *testing.T, got, want [][]Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d query results, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("query %d: %d matches, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("query %d match %d: %+v, want %+v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestTopK checks top-k semantics against a manual exact ranking over
// the brute-force candidate source.
func TestTopK(t *testing.T) {
	ds := smallDataset(t, 200).TfIdf().Normalize()
	ix, err := NewIndex(ds, Cosine, EngineConfig{Seed: 7, SignatureBits: 1024},
		Options{Algorithm: BruteForce, Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	const k = 5
	for i := 0; i < 20; i++ {
		got, err := ix.TopK(ds.Vector(i), k)
		if err != nil {
			t.Fatal(err)
		}
		// TopK reports the top k among vectors meeting the built
		// threshold — possibly fewer than k.
		qualifying := 0
		for j := 0; j < ds.Len(); j++ {
			if ds.Similarity(Cosine, i, j) >= 0.5 {
				qualifying++
			}
		}
		if want := min(k, qualifying); len(got) != want {
			t.Fatalf("query %d: %d matches, want %d (of %d qualifying)", i, len(got), want, qualifying)
		}
		for _, m := range got {
			if m.Sim < 0.5 {
				t.Fatalf("query %d: sub-threshold match %+v", i, m)
			}
		}
		// The query vector itself must rank first with similarity 1.
		if got[0].ID != i || got[0].Sim < 0.999999 {
			t.Fatalf("query %d: top match %+v, want self", i, got[0])
		}
		// Ranking must be by decreasing similarity, ids ascending on ties.
		for j := 1; j < len(got); j++ {
			if got[j].Sim > got[j-1].Sim ||
				(got[j].Sim == got[j-1].Sim && got[j].ID <= got[j-1].ID) {
				t.Fatalf("query %d: matches out of order: %+v before %+v", i, got[j-1], got[j])
			}
		}
		// Every returned similarity must be exact.
		for _, m := range got {
			if want := ds.Similarity(Cosine, i, m.ID); m.Sim != want {
				t.Fatalf("query %d match %d: sim %v, exact %v", i, m.ID, m.Sim, want)
			}
		}
	}
	if _, err := ix.TopK(ds.Vector(0), 0); err == nil {
		t.Fatal("TopK(0) should fail")
	}
}

// TestQueryOptionsValidation covers threshold overrides and the
// rejected configurations.
func TestQueryOptionsValidation(t *testing.T) {
	ds := smallDataset(t, 200).TfIdf().Normalize()
	ix, err := NewIndex(ds, Cosine, EngineConfig{Seed: 7, SignatureBits: 1024},
		Options{Algorithm: LSH, Threshold: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Query(ds.Vector(0), QueryOptions{Threshold: 0.5}); err == nil {
		t.Fatal("threshold below the built threshold should fail")
	}
	base, err := ix.Query(ds.Vector(0), QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	high, err := ix.Query(ds.Vector(0), QueryOptions{Threshold: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(high) > len(base) {
		t.Fatalf("raising the threshold grew the result set: %d > %d", len(high), len(base))
	}
	for _, m := range high {
		if m.Sim < 0.9 {
			t.Fatalf("match %+v below the override threshold", m)
		}
	}

	if ms, err := ix.Query(NewVec(nil), QueryOptions{}); err != nil || ms != nil {
		t.Fatalf("empty query: %v, %v; want nil, nil", ms, err)
	}
	if _, err := NewIndex(ds, Cosine, EngineConfig{Seed: 1}, Options{Algorithm: PPJoin, Threshold: 0.6}); err == nil {
		t.Fatal("PPJoin index should be rejected")
	}
}

// TestQueryOutOfVocabulary checks that queries carrying feature
// indices the corpus has never seen are served, not crashed on: the
// hyperplane family hashes the query's projection onto the corpus
// feature space, and exact verification accounts for the unseen mass
// through the full query norm.
func TestQueryOutOfVocabulary(t *testing.T) {
	ds := smallDataset(t, 200).TfIdf().Normalize()
	dim := uint32(ds.Dim())
	// A corpus vector's features plus out-of-vocabulary mass: the OOV
	// term contributes to the query norm but to no corpus dot product.
	mixed := map[uint32]float64{dim + 3: 0.2}
	base := ds.c.Vecs[0]
	for j, ind := range base.Ind {
		mixed[ind] = base.Val[j]
	}
	for _, alg := range []Algorithm{LSH, LSHBayesLSHLite, BruteForce} {
		ix, err := NewIndex(ds, Cosine, EngineConfig{Seed: 7, SignatureBits: 1024},
			Options{Algorithm: alg, Threshold: 0.6})
		if err != nil {
			t.Fatal(err)
		}
		oov := NewVec(map[uint32]float64{dim: 1, dim + 7: 2.5})
		if ms, err := ix.Query(oov, QueryOptions{}); err != nil || len(ms) != 0 {
			t.Fatalf("%v: all-OOV query: %v, %v; want no matches", alg, ms, err)
		}
		if _, err := ix.TopK(oov, 3); err != nil {
			t.Fatalf("%v: all-OOV TopK: %v", alg, err)
		}
		q := NewVec(mixed)
		ms, err := ix.Query(q, QueryOptions{})
		if err != nil {
			t.Fatalf("%v: mixed query: %v", alg, err)
		}
		// The query is nearly vector 0, so it must at least find it,
		// and every reported similarity must be the exact cosine of
		// the FULL query (OOV mass included) for the exact pipelines.
		found := false
		for _, m := range ms {
			if m.ID == 0 {
				found = true
			}
			want := toExactMeasure(Cosine).Sim(q.v, ds.c.Vecs[m.ID])
			if m.Sim != want {
				t.Fatalf("%v: match %d sim %v, exact %v", alg, m.ID, m.Sim, want)
			}
			if m.Sim >= 1 {
				t.Fatalf("%v: match %d sim %v ignores the OOV mass", alg, m.ID, m.Sim)
			}
		}
		if !found {
			t.Fatalf("%v: mixed query did not find vector 0 (matches %v)", alg, ms)
		}
	}
}

// TestIndexStats sanity-checks the build statistics.
func TestIndexStats(t *testing.T) {
	ds := smallDataset(t, 200).Binarize()
	ix, err := NewIndex(ds, Jaccard, EngineConfig{Seed: 8},
		Options{Algorithm: LSHBayesLSH, Threshold: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	st := ix.Stats()
	if st.Tables < 1 || st.BandK < 1 {
		t.Fatalf("missing banding stats: %+v", st)
	}
	if st.PriorCandidates == 0 {
		t.Fatalf("Jaccard BayesLSH index should have fitted a prior from candidates: %+v", st)
	}
	if st.BuildTime <= 0 {
		t.Fatalf("zero build time: %+v", st)
	}
	if ix.Len() != ds.Len() || ix.Measure() != Jaccard || ix.Threshold() != 0.4 {
		t.Fatalf("accessors wrong: len %d measure %v t %v", ix.Len(), ix.Measure(), ix.Threshold())
	}
}
