// Benchmarks of the live (ingest-while-serving) index — the numbers
// the CI perf artifact tracks (see .github/workflows/ci.yml and
// cmd/benchjson):
//
//	go test -bench Live -benchmem
//
// BenchmarkLiveAdd is steady-state ingest throughput (adds/s, merges
// disabled), BenchmarkLiveMerge is the cost of folding a full delta
// into the base, and BenchmarkLiveQueryUnderIngest is query latency —
// p50 reported — while a writer goroutine ingests continuously.
// docs/LIVE.md quotes the numbers from a reference run.
package bayeslsh_test

import (
	"sort"
	"testing"
	"time"

	"bayeslsh"
)

// benchLive builds a live index over the synthetic RCV1 analogue with
// a pool of held-out vectors to ingest.
func benchLive(b *testing.B, lc bayeslsh.LiveConfig) (*bayeslsh.LiveIndex, *bayeslsh.Dataset, []bayeslsh.Vec) {
	b.Helper()
	ds, err := bayeslsh.Synthetic("RCV1-sim")
	if err != nil {
		b.Fatal(err)
	}
	ds = ds.TfIdf().Normalize()
	li, err := bayeslsh.NewLiveIndex(ds, bayeslsh.Cosine,
		bayeslsh.EngineConfig{Seed: 42, Parallelism: 1},
		bayeslsh.Options{Algorithm: bayeslsh.LSHBayesLSH, Threshold: 0.7}, lc)
	if err != nil {
		b.Fatal(err)
	}
	// Reingest corpus vectors as the add stream: realistic sparsity,
	// no synthesis cost inside the timed loop.
	pool := make([]bayeslsh.Vec, ds.Len())
	for i := range pool {
		pool[i] = ds.Vector(i)
	}
	return li, ds, pool
}

// BenchmarkLiveAdd measures ingest throughput with merges disabled:
// one iteration hashes and indexes one vector into the delta segment.
func BenchmarkLiveAdd(b *testing.B) {
	li, _, pool := benchLive(b, bayeslsh.LiveConfig{MaxDelta: -1, MaxRatio: -1})
	defer li.Close()
	// Warm the lazily-materialized hash-family blocks (a one-time,
	// corpus-independent cost) so iterations measure steady ingest.
	if _, err := li.Add(pool[0]); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := li.Add(pool[i%len(pool)]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "adds/s")
}

// BenchmarkLiveMerge measures the background fold: each iteration
// ingests 512 vectors with merging off, then compacts them (plus 64
// tombstones) into a fresh base. The reported time is dominated by
// the merge itself — ingest is orders of magnitude cheaper (see
// BenchmarkLiveAdd).
func BenchmarkLiveMerge(b *testing.B) {
	li, ds, pool := benchLive(b, bayeslsh.LiveConfig{MaxDelta: -1, MaxRatio: -1})
	defer li.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 512; j++ {
			if _, err := li.Add(pool[(i*512+j)%len(pool)]); err != nil {
				b.Fatal(err)
			}
		}
		for j := 0; j < 64; j++ {
			li.Delete((i*64 + j) % ds.Len())
		}
		b.StartTimer()
		li.Compact()
	}
	if st := li.Stats(); st.Merges != int64(b.N) {
		b.Fatalf("%d merges for %d iterations", st.Merges, b.N)
	}
}

// BenchmarkLiveQueryUnderIngest measures query latency while a
// background writer ingests continuously (policy-triggered merges
// on): each iteration is one Query; the p50 over all iterations is
// reported alongside Go's mean ns/op.
func BenchmarkLiveQueryUnderIngest(b *testing.B) {
	li, _, pool := benchLive(b, bayeslsh.LiveConfig{MaxDelta: 1024})
	defer li.Close()
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := li.Add(pool[i%len(pool)]); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	if _, err := li.Query(pool[0], bayeslsh.QueryOptions{}); err != nil {
		b.Fatal(err)
	}
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := li.Query(pool[i%len(pool)], bayeslsh.QueryOptions{}); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(t0))
	}
	b.StopTimer()
	close(stop)
	<-writerDone
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds()), "p50-ns/query")
	b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds()), "p99-ns/query")
}
