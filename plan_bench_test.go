package bayeslsh_test

import (
	"context"
	"testing"

	"bayeslsh"
	"bayeslsh/internal/harness"
	"bayeslsh/internal/rescache"
)

// The planner/cache perf artifact (BENCH_plan.json): what one plan
// decision costs, and what a served query costs when the result cache
// answers it. Both are gated against the committed baseline by
// benchjson -baseline in CI.

// BenchmarkAutoPlan measures one ChoosePlan decision over real
// collected statistics — the price every AutoPipeline build or
// plan-cache miss pays. Thresholds cycle across buckets so the
// measurement covers rule paths, not one memoized branch.
func BenchmarkAutoPlan(b *testing.B) {
	ds := harness.ProfileDataset(b, harness.Profiles()[0], bayeslsh.Cosine)
	st := ds.CorpusStats()
	thresholds := []float64{0.35, 0.5, 0.65, 0.8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan := bayeslsh.ChoosePlan(st, bayeslsh.PlanQuery{
			Measure:   bayeslsh.Measure(i % 3),
			Threshold: thresholds[i%len(thresholds)],
			K:         i % 2 * 10,
			Serving:   true,
		})
		if len(plan.Rules) == 0 {
			b.Fatal("no rules fired")
		}
	}
}

// BenchmarkCachedQuery measures the served-query fast path when the
// result cache holds the answer, against the same query answered by
// the index on every call — the two sides of the hit/miss economics
// that -cache-size buys.
func BenchmarkCachedQuery(b *testing.B) {
	ds := harness.ProfileDataset(b, harness.Profiles()[0], bayeslsh.Cosine)
	ix, err := bayeslsh.NewLiveIndex(ds, bayeslsh.Cosine, bayeslsh.EngineConfig{Seed: 7, Parallelism: 2}, bayeslsh.Options{
		AutoPipeline: true, Threshold: 0.6,
	}, bayeslsh.LiveConfig{MaxDelta: -1, MaxRatio: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer ix.Close()
	q := ds.Vector(3)
	ctx := context.Background()

	b.Run("Hit", func(b *testing.B) {
		c := rescache.New(ix, 64)
		if _, err := c.QueryContext(ctx, q, bayeslsh.QueryOptions{}); err != nil {
			b.Fatal(err) // warm the entry; every timed call is a hit
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.QueryContext(ctx, q, bayeslsh.QueryOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ix.QueryContext(ctx, q, bayeslsh.QueryOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
