// Benchmarks regenerating every table and figure of the paper (one
// benchmark per artifact, via the experiment harness in quick mode)
// plus micro-benchmarks of the individual pipelines.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// For the full-size experiment matrices use cmd/experiments instead;
// the benchmarks here use trimmed matrices so the whole suite
// completes in minutes.
package bayeslsh_test

import (
	"io"
	"testing"

	"bayeslsh"
	"bayeslsh/internal/harness"
)

// benchCfg trims the experiment matrices to a single dataset so each
// benchmark iteration stays in the seconds range.
func benchCfg() harness.Config {
	return harness.Config{Seed: 42, Quick: true, Datasets: []string{"RCV1-sim"}}
}

func runExperiment(b *testing.B, id string, cfg harness.Config) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := harness.Run(id, io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1HashesVsSimilarity regenerates Figure 1 (pure
// numerics: binomial concentration search).
func BenchmarkFig1HashesVsSimilarity(b *testing.B) { runExperiment(b, "fig1", benchCfg()) }

// BenchmarkFig2ParamSweep regenerates Figure 2 (γ/δ/ε sweep of
// LSH+BayesLSH on WikiWords100K-sim at t=0.7).
func BenchmarkFig2ParamSweep(b *testing.B) { runExperiment(b, "fig2", benchCfg()) }

// BenchmarkFig3Timing regenerates Figure 3 (all pipelines, quick
// matrix on RCV1-sim, all three measures).
func BenchmarkFig3Timing(b *testing.B) { runExperiment(b, "fig3", benchCfg()) }

// BenchmarkFig4PruningCurve regenerates Figure 4 (surviving
// candidates vs hashes examined).
func BenchmarkFig4PruningCurve(b *testing.B) { runExperiment(b, "fig4", benchCfg()) }

// BenchmarkFig5PriorPosterior regenerates the appendix figure (prior
// vs posterior convergence).
func BenchmarkFig5PriorPosterior(b *testing.B) { runExperiment(b, "fig5", benchCfg()) }

// BenchmarkTab1DatasetStats regenerates Table 1 (dataset statistics;
// dominated by synthetic corpus generation).
func BenchmarkTab1DatasetStats(b *testing.B) { runExperiment(b, "tab1", benchCfg()) }

// BenchmarkTab2Speedups regenerates Table 2 (fastest BayesLSH variant
// and speedups over the baselines).
func BenchmarkTab2Speedups(b *testing.B) { runExperiment(b, "tab2", benchCfg()) }

// BenchmarkTab3Recall regenerates Table 3 (recall of the AP+BayesLSH
// variants).
func BenchmarkTab3Recall(b *testing.B) { runExperiment(b, "tab3", benchCfg()) }

// BenchmarkTab4EstimateErrors regenerates Table 4 (estimate error
// rates of LSH Approx vs LSH+BayesLSH).
func BenchmarkTab4EstimateErrors(b *testing.B) { runExperiment(b, "tab4", benchCfg()) }

// BenchmarkTab5ParamQuality regenerates Table 5 (output quality while
// varying γ, δ, ε).
func BenchmarkTab5ParamQuality(b *testing.B) { runExperiment(b, "tab5", benchCfg()) }

// --- pipeline micro-benchmarks -------------------------------------

// benchEngine builds a ready engine over the RCV1 analogue.
func benchEngine(b *testing.B, m bayeslsh.Measure) *bayeslsh.Engine {
	b.Helper()
	ds, err := bayeslsh.Synthetic("RCV1-sim")
	if err != nil {
		b.Fatal(err)
	}
	if m == bayeslsh.Cosine {
		ds = ds.TfIdf().Normalize()
	} else {
		ds = ds.Binarize()
	}
	eng, err := bayeslsh.NewEngine(ds, m, bayeslsh.EngineConfig{Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

func benchSearch(b *testing.B, m bayeslsh.Measure, alg bayeslsh.Algorithm, t float64) {
	b.Helper()
	eng := benchEngine(b, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Search(bayeslsh.Options{Algorithm: alg, Threshold: t}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineAllPairsCosine(b *testing.B) {
	benchSearch(b, bayeslsh.Cosine, bayeslsh.AllPairs, 0.7)
}

func BenchmarkPipelineAPBayesLSHLiteCosine(b *testing.B) {
	benchSearch(b, bayeslsh.Cosine, bayeslsh.AllPairsBayesLSHLite, 0.7)
}

func BenchmarkPipelineLSHBayesLSHCosine(b *testing.B) {
	benchSearch(b, bayeslsh.Cosine, bayeslsh.LSHBayesLSH, 0.7)
}

func BenchmarkPipelineLSHExactCosine(b *testing.B) {
	benchSearch(b, bayeslsh.Cosine, bayeslsh.LSH, 0.7)
}

func BenchmarkPipelinePPJoinJaccard(b *testing.B) {
	benchSearch(b, bayeslsh.Jaccard, bayeslsh.PPJoin, 0.5)
}

// --- parallel vs sequential pipeline benchmarks --------------------
//
// The same search at Parallelism 1 (fully sequential) and Parallelism
// NumCPU (sharded candidate generation + batched parallel
// verification). Result sets are identical for the fixed seed; compare
// ns/op to measure the sharding speedup on your hardware:
//
//	go test -bench 'Parallelism' -benchmem

// benchParallelism runs one pipeline with an explicit worker count.
func benchParallelism(b *testing.B, m bayeslsh.Measure, alg bayeslsh.Algorithm, t float64, workers int) {
	b.Helper()
	ds, err := bayeslsh.Synthetic("RCV1-sim")
	if err != nil {
		b.Fatal(err)
	}
	if m == bayeslsh.Cosine {
		ds = ds.TfIdf().Normalize()
	} else {
		ds = ds.Binarize()
	}
	eng, err := bayeslsh.NewEngine(ds, m, bayeslsh.EngineConfig{Seed: 42, Parallelism: workers})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Search(bayeslsh.Options{Algorithm: alg, Threshold: t}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallelismSeqLSHBayesLSHCosine(b *testing.B) {
	benchParallelism(b, bayeslsh.Cosine, bayeslsh.LSHBayesLSH, 0.7, 1)
}

func BenchmarkParallelismParLSHBayesLSHCosine(b *testing.B) {
	benchParallelism(b, bayeslsh.Cosine, bayeslsh.LSHBayesLSH, 0.7, 0) // NumCPU
}

func BenchmarkParallelismSeqAPBayesLSHLiteJaccard(b *testing.B) {
	benchParallelism(b, bayeslsh.Jaccard, bayeslsh.AllPairsBayesLSHLite, 0.5, 1)
}

func BenchmarkParallelismParAPBayesLSHLiteJaccard(b *testing.B) {
	benchParallelism(b, bayeslsh.Jaccard, bayeslsh.AllPairsBayesLSHLite, 0.5, 0) // NumCPU
}

func BenchmarkParallelismSeqBruteForceCosine(b *testing.B) {
	benchParallelism(b, bayeslsh.Cosine, bayeslsh.BruteForce, 0.7, 1)
}

func BenchmarkParallelismParBruteForceCosine(b *testing.B) {
	benchParallelism(b, bayeslsh.Cosine, bayeslsh.BruteForce, 0.7, 0) // NumCPU
}

func BenchmarkPipelineAPBayesLSHLiteJaccard(b *testing.B) {
	benchSearch(b, bayeslsh.Jaccard, bayeslsh.AllPairsBayesLSHLite, 0.5)
}
