package bayeslsh

import (
	"context"
	"errors"
	"fmt"
	"iter"

	"bayeslsh/internal/allpairs"
	"bayeslsh/internal/core"
	"bayeslsh/internal/exact"
	"bayeslsh/internal/pair"
	"bayeslsh/internal/ppjoin"
	"bayeslsh/internal/shard"
)

// Stream runs one search and yields verified result pairs as
// verification batches complete, instead of accumulating the full
// result set the way Search does. That bounds the memory of result
// delivery — only the batches in flight are resident — which is what
// makes a pathological low-threshold join (the paper's §5 worst case,
// where result volume explodes as t drops) survivable: the caller
// sees pairs immediately and can stop at any time.
//
// The returned iterator is single-use and lazy: the pipeline starts
// when iteration starts and is torn down (all goroutines drained)
// when iteration ends, whether by exhaustion, by the consumer
// breaking out early, or by ctx being canceled. Yielded pairs arrive
// in an unspecified order; collected and sorted they equal
// Search's results exactly, for every measure and pipeline, because
// per-pair verification decisions are pure functions of the pair.
// On cancellation or failure the iterator yields one final
// (Result{}, err) — err wrapping context.Canceled or
// context.DeadlineExceeded for cancellation — after any pairs that
// were already verified; those delivered pairs are correct results,
// just not all of them (the partial-results caveat of
// docs/CONTEXTS.md).
//
// The candidate phase still materializes the candidate set (sorted,
// as in Search): candidates are pairs that *might* match and cannot
// be verified before they are enumerated. Stream bounds the results,
// not the candidates.
func (e *Engine) Stream(ctx context.Context, opts Options) iter.Seq2[Result, error] {
	return func(yield func(Result, error) bool) {
		o, err := opts.withDefaults(e.measure)
		if err != nil {
			yield(Result{}, err)
			return
		}
		if o.AutoPipeline {
			o, _ = e.resolveAuto(o, false)
		}
		// The consumer breaking out of the range loop must tear the
		// pipeline down exactly like a cancellation, so the pipeline
		// runs under a derived context that emit can cancel.
		ictx, cancel := context.WithCancel(ctx)
		defer cancel()
		broke := false
		emit := func(rs []pair.Result) error {
			for _, r := range rs {
				if !yield(Result{A: int(r.A), B: int(r.B), Sim: r.Sim}, nil) {
					broke = true
					return errStreamBreak
				}
			}
			return nil
		}
		if err := e.stream(ictx, o, emit); err != nil && !broke {
			yield(Result{}, ctxWrap(err))
		}
	}
}

// errStreamBreak aborts the pipeline when the consumer stops ranging;
// it never escapes Stream.
var errStreamBreak = errors.New("bayeslsh: stream consumer stopped")

// stream dispatches one streaming search. emit receives batches of
// verified results on the calling goroutine (the shard.StreamCtx
// contract); errors are raw ctx errors or emit's own.
func (e *Engine) stream(ctx context.Context, o Options, emit func([]pair.Result) error) error {
	workers, batch := e.workers(), e.cfg.BatchSize
	switch o.Algorithm {
	case BruteForce:
		return exact.SearchStream(ctx, e.workInput(), toExactMeasure(e.measure), o.Threshold, workers, emit)

	case AllPairs:
		return allpairs.SearchMeasureStream(ctx, e.workInput(), toExactMeasure(e.measure), o.Threshold, workers, batch, emit)

	case PPJoin:
		if e.measure == Cosine {
			return fmt.Errorf("bayeslsh: PPJoin supports binary measures only")
		}
		return ppjoin.SearchStream(ctx, e.workInput(), toExactMeasure(e.measure), o.Threshold, emit)

	case LSH, LSHApprox, AllPairsBayesLSH, AllPairsBayesLSHLite, LSHBayesLSH, LSHBayesLSHLite:
		return e.streamTwoPhase(ctx, o, emit)

	default:
		return fmt.Errorf("bayeslsh: unknown algorithm %v", o.Algorithm)
	}
}

// streamTwoPhase runs candidate generation exactly as the batch
// pipeline does (same sorted candidate stream, same prior fitting),
// then streams the verification phase batch by batch.
func (e *Engine) streamTwoPhase(ctx context.Context, o Options, emit func([]pair.Result) error) error {
	cands, err := e.candidates(ctx, o)
	if err != nil {
		return err
	}
	pair.SortPairs(cands)

	workers, batch := e.workers(), e.cfg.BatchSize
	switch o.Algorithm {
	case LSH:
		return exact.VerifyStream(ctx, e.workInput(), toExactMeasure(e.measure), o.Threshold, cands, workers, batch, emit)

	case LSHApprox:
		return e.approxStream(ctx, o, cands, emit)

	case AllPairsBayesLSH, LSHBayesLSH:
		v, err := e.bayesVerifier(ctx, o, cands)
		if err != nil {
			return err
		}
		if o.Algorithm == AllPairsBayesLSH {
			// Per-batch twin of the batch pipeline's dropSubThreshold:
			// the filter is per-pair, so applying it batch by batch
			// keeps streamed results strictly equal to batch results.
			inner := emit
			emit = func(rs []pair.Result) error {
				var st core.Stats
				return inner(e.dropSubThreshold(rs, o.Threshold, &st))
			}
		}
		return v.VerifyStream(ctx, cands, workers, batch, emit)

	default: // AllPairsBayesLSHLite, LSHBayesLSHLite
		v, err := e.bayesVerifier(ctx, o, cands)
		if err != nil {
			return err
		}
		return v.VerifyLiteStream(ctx, cands, o.LiteHashes, e.exactSim, workers, batch, emit)
	}
}

// approxStream is the streaming form of approxVerifyCtx.
func (e *Engine) approxStream(ctx context.Context, o Options, cands []pair.Pair, emit func([]pair.Result) error) error {
	est, _, err := e.approxEstimator(ctx, o)
	if err != nil {
		return err
	}
	stop := shard.NewStopper(ctx)
	defer stop.Close()
	return shard.StreamCtx(ctx, len(cands), e.workers(), e.cfg.BatchSize, func(lo, hi int) []pair.Result {
		var out []pair.Result
		for _, p := range cands[lo:hi] {
			if stop.Stopped() {
				return nil
			}
			if s := est(p); s >= o.Threshold {
				out = append(out, pair.Result{A: p.A, B: p.B, Sim: s})
			}
		}
		return out
	}, emit)
}
