// Package bayeslsh is a Go implementation of BayesLSH and
// BayesLSH-Lite (Satuluri and Parthasarathy, "Bayesian Locality
// Sensitive Hashing for Fast Similarity Search", PVLDB 5(5), 2012):
// Bayesian candidate pruning and similarity estimation for all-pairs
// similarity search (APSS) with locality-sensitive hashing.
//
// # Problem and pipelines
//
// The package serves two workloads over the same machinery. The batch
// workload is the all-pairs problem: given a collection of sparse
// vectors, a similarity measure (cosine, Jaccard, or binary cosine)
// and a threshold t, find every pair with similarity at least t. The
// online workload is query serving: build an Index over the
// collection once, then ask which stored vectors are similar to a
// given query vector — see the Querying section below. Batch search
// pipelines pair a candidate generation algorithm (AllPairs or LSH
// banding, §2 of the paper) with a verification algorithm (exact,
// classical LSH estimation of §3, BayesLSH, or BayesLSH-Lite of §4),
// mirroring the eight methods compared in §5:
//
//	ds := bayeslsh.NewDataset(dim)
//	for _, doc := range docs {
//		ds.Add(doc) // map[uint32]float64 feature weights
//	}
//	ds = ds.TfIdf().Normalize()
//	eng, err := bayeslsh.NewEngine(ds, bayeslsh.Cosine, bayeslsh.EngineConfig{Seed: 42})
//	out, err := eng.Search(bayeslsh.Options{
//		Algorithm: bayeslsh.LSHBayesLSH,
//		Threshold: 0.7,
//	})
//
// BayesLSH verification provides the paper's probabilistic guarantees:
// each candidate pair with posterior probability above ε of meeting
// the threshold reaches the output, and each reported similarity
// estimate is within δ of the true similarity with probability at
// least 1 − γ. BayesLSH-Lite prunes the same way but reports exact
// similarities.
//
// # Querying (build once, query many)
//
// An Index splits the batch monolith into an ingest phase and a
// reusable query phase: it builds signatures, LSH band tables and/or
// the AllPairs inverted index once, then serves concurrent
// Query(vec, opts), TopK(vec, k) and QueryBatch calls, each running
// candidate generation against the prebuilt structure followed by
// per-query BayesLSH verification:
//
//	ix, err := bayeslsh.NewIndex(ds, bayeslsh.Cosine,
//		bayeslsh.EngineConfig{Seed: 42},
//		bayeslsh.Options{Algorithm: bayeslsh.LSHBayesLSH, Threshold: 0.7})
//	matches, err := ix.Query(bayeslsh.NewVec(features), bayeslsh.QueryOptions{})
//
// Queries are consistent with batch search for every pipeline: a
// query equal to dataset vector i returns exactly the pairs involving
// i that Search finds at the same threshold and Seed (docs/QUERYING.md
// has the guarantee and the cost model).
//
// # Persistence (build offline, serve online)
//
// A built Index snapshots to a versioned, checksummed binary stream
// and loads back without rebuilding — the offline-build/online-serve
// split of production systems, where one builder writes a snapshot
// and a fleet of serving processes load it at startup:
//
//	err := ix.SaveFile("index.snap")     // offline (atomic replace)
//	ix, err := bayeslsh.LoadFile("index.snap") // online, milliseconds
//
// A loaded index serves Query, TopK and QueryBatch results
// bit-identical to the index that wrote the snapshot, at any
// Parallelism and BatchSize (set per process with Index.SetRuntime).
// WriteTo and ReadIndex are the io.Writer/io.Reader forms;
// docs/PERSISTENCE.md documents the format and versioning policy.
//
// # Live serving (ingest while querying)
//
// A LiveIndex serves the same query surface while Add and Delete
// mutate the corpus — no rebuild on the caller's path. It pairs the
// immutable base Index with a small mutable delta segment (new
// vectors hash once, at ingest, against the same seeded families), a
// monotone tombstone set masking deletions, and a background merge
// that folds both into a fresh base and publishes it by atomic
// generation swap:
//
//	li, err := bayeslsh.NewLiveIndex(ds, m, cfg, opts, bayeslsh.LiveConfig{})
//	id, err := li.Add(vec)   // visible to queries from now on
//	ok := li.Delete(id)      // masked from now on
//
// Determinism extends to mutation: after any interleaving of adds,
// deletes and merges, results are bit-identical to a cold Index built
// over the equivalent corpus. Live state snapshots as a version-2
// stream (LiveIndex.WriteTo, ReadLiveIndex, LoadLiveFile); see
// docs/LIVE.md for the segment model and merge policy.
//
// # Cancellation and streaming
//
// Every search and query has a context-aware form — SearchContext,
// QueryContext, TopKContext, QueryBatchContext — whose cancellation
// is plumbed through all pipeline layers: a canceled context aborts
// signature fills, candidate generation, BayesLSH rounds and exact
// verification promptly, drains every goroutine, and surfaces an
// error wrapping context.Canceled or context.DeadlineExceeded. The
// blocking forms are unchanged wrappers over context.Background().
// Engine.Stream additionally delivers batch-search results as an
// iter.Seq2[Result, error] while verification runs, bounding resident
// result memory for huge joins:
//
//	for r, err := range eng.Stream(ctx, opts) {
//		if err != nil { break } // canceled or failed
//		use(r)
//	}
//
// docs/CONTEXTS.md documents the semantics, the per-layer check
// granularity and the streaming memory model.
//
// # Parallelism and determinism
//
// An Engine runs a sharded, batched search pipeline: signature
// hashing, candidate generation (LSH bands, the AllPairs probe phase)
// and verification all divide their work over a pool of
// EngineConfig.Parallelism goroutines, with candidate pairs flowing
// to verification workers in EngineConfig.BatchSize units. Every
// randomized component derives its stream from the configured Seed
// per work item (per hash block, per band, per pair) rather than per
// worker, so for a fixed Seed the result set is bit-for-bit identical
// at any parallelism level — including Parallelism 1, the fully
// sequential fallback. See docs/TUNING.md for how to set the knobs.
//
// # Layout
//
// The exported API lives in this package: Dataset, Engine, Options
// and Result for batch search; Index, Vec, QueryOptions and Match for
// query serving; LiveIndex and LiveConfig for ingest-while-serving
// (internal/live holds its memtable, tombstones and merge policy).
// The algorithms live in internal packages:
// internal/core holds the Bayesian verification kernel (two-sided and
// one-sided), internal/allpairs, internal/lshindex and
// internal/ppjoin generate candidates (the first two also keep
// query-servable structures), internal/sighash and internal/minhash
// implement the LSH families, internal/snapshot holds the binary
// snapshot primitives behind Index persistence, and internal/harness
// regenerates the paper's tables and figures. The README's
// architecture map walks through all of them.
package bayeslsh
