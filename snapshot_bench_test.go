// Benchmarks of index persistence: snapshot write cost, load cost,
// and — the number the offline/online split is about — load versus
// rebuild. Run with:
//
//	go test -bench Snapshot -benchmem
//
// Snapshot size is reported as the "bytes" metric of the write
// benchmark. docs/PERSISTENCE.md quotes the numbers from a reference
// run.
package bayeslsh_test

import (
	"bytes"
	"testing"

	"bayeslsh"
)

// benchSnapshotIndex builds the index the persistence benchmarks
// serialize: LSH+BayesLSH over the RCV1 analogue, queried once so the
// verification-depth signatures are materialized as they would be in
// a warmed serving process.
func benchSnapshotIndex(b *testing.B) (*bayeslsh.Index, *bayeslsh.Dataset) {
	b.Helper()
	ix, ds := benchIndex(b, bayeslsh.Cosine,
		bayeslsh.Options{Algorithm: bayeslsh.LSHBayesLSH, Threshold: 0.7}, 0)
	if _, err := ix.Query(ds.Vector(0), bayeslsh.QueryOptions{}); err != nil {
		b.Fatal(err)
	}
	return ix, ds
}

// BenchmarkSnapshotWrite measures Index.WriteTo into memory.
func BenchmarkSnapshotWrite(b *testing.B) {
	ix, _ := benchSnapshotIndex(b)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	size := buf.Len()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if _, err := ix.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(size), "snapshot-bytes")
}

// BenchmarkSnapshotLoad measures ReadIndex from memory — the cost a
// serving process pays at startup instead of a full rebuild.
func BenchmarkSnapshotLoad(b *testing.B) {
	ix, _ := benchSnapshotIndex(b)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bayeslsh.ReadIndex(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotRebuild is the baseline BenchmarkSnapshotLoad
// replaces: building the same index from the dataset (hashing, band
// tables) without a snapshot.
func BenchmarkSnapshotRebuild(b *testing.B) {
	_, ds := benchSnapshotIndex(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, err := bayeslsh.NewIndex(ds, bayeslsh.Cosine,
			bayeslsh.EngineConfig{Seed: 42},
			bayeslsh.Options{Algorithm: bayeslsh.LSHBayesLSH, Threshold: 0.7})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ix.Query(ds.Vector(0), bayeslsh.QueryOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
